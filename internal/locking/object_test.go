package locking

import (
	"errors"
	"sync"
	"testing"
	"time"

	"weihl83/internal/adts"
	"weihl83/internal/cc"
	"weihl83/internal/core"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// testSink collects events thread-safely.
type testSink struct {
	mu sync.Mutex
	h  histories.History
}

func (s *testSink) sink() cc.EventSink {
	return func(e histories.Event) {
		s.mu.Lock()
		s.h = append(s.h, e)
		s.mu.Unlock()
	}
}

func (s *testSink) history() histories.History {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Clone()
}

func txn(id string, seq int64) *cc.TxnInfo {
	return &cc.TxnInfo{ID: histories.ActivityID(id), Seq: seq}
}

func newAccountObject(t *testing.T, g Guard, sink cc.EventSink) (*Object, *Detector) {
	t.Helper()
	det := NewDetector()
	o, err := New(Config{
		ID:       "y",
		Type:     adts.Account(),
		Guard:    g,
		Detector: det,
		Sink:     sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o, det
}

func mustInvoke(t *testing.T, o *Object, tx *cc.TxnInfo, op string, arg value.Value) value.Value {
	t.Helper()
	v, err := o.Invoke(tx, spec.Invocation{Op: op, Arg: arg})
	if err != nil {
		t.Fatalf("invoke %s(%s) by %s: %v", op, arg, tx.ID, err)
	}
	return v
}

func TestObjectBasicCommit(t *testing.T) {
	var rec testSink
	o, _ := newAccountObject(t, EscrowGuard{}, rec.sink())
	a := txn("a", 1)
	mustInvoke(t, o, a, adts.OpDeposit, value.Int(10))
	if err := o.Prepare(a); err != nil {
		t.Fatal(err)
	}
	o.Commit(a, histories.TSNone)

	if got := o.Base().(adts.AccountState).Balance(); got != 10 {
		t.Errorf("balance after commit = %d, want 10", got)
	}
	if err := o.Err(); err != nil {
		t.Errorf("object corrupted: %v", err)
	}
	h := rec.history()
	want := histories.MustParse(`
<deposit(10),y,a>
<ok,y,a>
<commit,y,a>
`)
	if !h.Equivalent(want) {
		t.Errorf("recorded history:\n%v\nwant:\n%v", h, want)
	}
	ck := core.NewChecker()
	ck.Register("y", adts.AccountSpec{})
	if err := ck.DynamicAtomic(h); err != nil {
		t.Errorf("recorded history not dynamic atomic: %v", err)
	}
}

func TestObjectAbortDiscardsIntentions(t *testing.T) {
	var rec testSink
	o, _ := newAccountObject(t, EscrowGuard{}, rec.sink())
	a := txn("a", 1)
	mustInvoke(t, o, a, adts.OpDeposit, value.Int(10))
	o.Abort(a)
	if got := o.Base().(adts.AccountState).Balance(); got != 0 {
		t.Errorf("balance after abort = %d, want 0", got)
	}
	b := txn("b", 2)
	if got := mustInvoke(t, o, b, adts.OpBalance, value.Nil()); got != value.Int(0) {
		t.Errorf("balance read %v after abort", got)
	}
}

// TestConcurrentWithdrawalsEscrow is §5.1 live: with balance 10, two
// transactions withdraw 4 and 3 concurrently without blocking, then both
// commit. The recorded history must be dynamic atomic.
func TestConcurrentWithdrawalsEscrow(t *testing.T) {
	var rec testSink
	o, _ := newAccountObject(t, EscrowGuard{}, rec.sink())
	a, b, c := txn("a", 1), txn("b", 2), txn("c", 3)

	mustInvoke(t, o, a, adts.OpDeposit, value.Int(10))
	o.Commit(a, histories.TSNone)

	// Interleave b and c without committing either.
	if got := mustInvoke(t, o, b, adts.OpWithdraw, value.Int(4)); got != value.Unit() {
		t.Errorf("b's withdrawal returned %v", got)
	}
	if got := mustInvoke(t, o, c, adts.OpWithdraw, value.Int(3)); got != value.Unit() {
		t.Errorf("c's withdrawal returned %v", got)
	}
	o.Commit(c, histories.TSNone)
	o.Commit(b, histories.TSNone)

	if got := o.Base().(adts.AccountState).Balance(); got != 3 {
		t.Errorf("final balance %d, want 3", got)
	}
	ck := core.NewChecker()
	ck.Register("y", adts.AccountSpec{})
	if err := ck.DynamicAtomic(rec.history()); err != nil {
		t.Errorf("history not dynamic atomic: %v", err)
	}
}

// TestConcurrentWithdrawalsBlockUnderTableGuard: the same workload under
// the commutativity table blocks the second withdrawal until the first
// commits — the §5.1 contrast.
func TestConcurrentWithdrawalsBlockUnderTableGuard(t *testing.T) {
	var rec testSink
	o, _ := newAccountObject(t, TableGuard{Conflicts: adts.AccountConflicts}, rec.sink())
	a, b, c := txn("a", 1), txn("b", 2), txn("c", 3)

	mustInvoke(t, o, a, adts.OpDeposit, value.Int(10))
	o.Commit(a, histories.TSNone)
	mustInvoke(t, o, b, adts.OpWithdraw, value.Int(4))

	done := make(chan value.Value, 1)
	go func() {
		v, err := o.Invoke(c, spec.Invocation{Op: adts.OpWithdraw, Arg: value.Int(3)})
		if err != nil {
			done <- value.Str(err.Error())
			return
		}
		done <- v
	}()
	select {
	case v := <-done:
		t.Fatalf("c's withdrawal was not blocked (returned %v)", v)
	case <-time.After(50 * time.Millisecond):
	}
	o.Commit(b, histories.TSNone)
	select {
	case v := <-done:
		if v != value.Unit() {
			t.Errorf("c's withdrawal after unblock: %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("c's withdrawal never unblocked")
	}
	o.Commit(c, histories.TSNone)
	if got := o.Base().(adts.AccountState).Balance(); got != 3 {
		t.Errorf("final balance %d, want 3", got)
	}
}

// TestQueuePaperHistoryUnderExactGuard drives the full §5.1 queue
// interleaving through the protocol (E8's protocol side): the interleaved
// enqueues of a and b are granted concurrently, and after both commit, c
// dequeues 1, 2, 1, 2.
func TestQueuePaperHistoryUnderExactGuard(t *testing.T) {
	var rec testSink
	det := NewDetector()
	o, err := New(Config{
		ID:       "x",
		Type:     adts.Queue(),
		Guard:    ExactGuard{Spec: adts.QueueSpec{}},
		Detector: det,
		Sink:     rec.sink(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := txn("a", 1), txn("b", 2), txn("c", 3)
	mustInvoke(t, o, a, adts.OpEnqueue, value.Int(1))
	mustInvoke(t, o, b, adts.OpEnqueue, value.Int(1))
	mustInvoke(t, o, a, adts.OpEnqueue, value.Int(2))
	mustInvoke(t, o, b, adts.OpEnqueue, value.Int(2))
	o.Commit(a, histories.TSNone)
	o.Commit(b, histories.TSNone)
	want := []int64{1, 2, 1, 2}
	for i, w := range want {
		got := mustInvoke(t, o, c, adts.OpDequeue, value.Nil())
		if got != value.Int(w) {
			t.Errorf("dequeue %d = %v, want %d", i, got, w)
		}
	}
	o.Commit(c, histories.TSNone)

	ck := core.NewChecker()
	ck.Register("x", adts.QueueSpec{})
	if err := ck.DynamicAtomic(rec.history()); err != nil {
		t.Errorf("queue history not dynamic atomic: %v", err)
	}
	if err := o.Err(); err != nil {
		t.Errorf("object corrupted: %v", err)
	}
}

func TestDeadlockDetectionAcrossObjects(t *testing.T) {
	det := NewDetector()
	newObj := func(id string) *Object {
		o, err := New(Config{
			ID:       histories.ObjectID(id),
			Type:     adts.Account(),
			Guard:    TableGuard{Conflicts: adts.AccountConflicts},
			Detector: det,
		})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	ox, oy := newObj("x"), newObj("y")
	a, b := txn("a", 1), txn("b", 2)
	det.Register(a.ID, a.Seq)
	det.Register(b.ID, b.Seq)

	mustInvoke(t, ox, a, adts.OpDeposit, value.Int(1)) // a holds x
	mustInvoke(t, oy, b, adts.OpDeposit, value.Int(1)) // b holds y

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // a wants y, where b's deposit conflicts with a withdrawal
		defer wg.Done()
		_, err := oy.Invoke(a, spec.Invocation{Op: adts.OpWithdraw, Arg: value.Int(1)})
		errs <- err
	}()
	go func() { // b wants x, where a's deposit conflicts with a withdrawal
		defer wg.Done()
		_, err := ox.Invoke(b, spec.Invocation{Op: adts.OpWithdraw, Arg: value.Int(1)})
		errs <- err
	}()

	// Exactly one of the two must be chosen as victim; the other completes
	// once the victim aborts.
	var victimErr error
	select {
	case victimErr = <-errs:
	case <-time.After(5 * time.Second):
		t.Fatal("no deadlock detected")
	}
	if !errors.Is(victimErr, cc.ErrDeadlock) {
		t.Fatalf("victim error = %v, want ErrDeadlock", victimErr)
	}
	// The youngest (b, seq 2) must be the victim; abort it everywhere.
	if det.Doomed(b.ID) == nil {
		t.Error("victim selection did not doom the youngest transaction")
	}
	ox.Abort(b)
	oy.Abort(b)
	det.Forget(b.ID)

	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("survivor's invocation failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never unblocked")
	}
	wg.Wait()
	ox.Commit(a, histories.TSNone)
	oy.Commit(a, histories.TSNone)
}

func TestTimeoutWithoutDetector(t *testing.T) {
	o, err := New(Config{
		ID:          "y",
		Type:        adts.Account(),
		Guard:       TableGuard{Conflicts: adts.AccountConflicts},
		WaitTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := txn("a", 1), txn("b", 2)
	mustInvoke(t, o, a, adts.OpDeposit, value.Int(1))
	_, err = o.Invoke(b, spec.Invocation{Op: adts.OpWithdraw, Arg: value.Int(1)})
	if !errors.Is(err, cc.ErrTimeout) {
		t.Errorf("blocked invoke = %v, want ErrTimeout", err)
	}
}

func TestUpdateInPlaceUndo(t *testing.T) {
	det := NewDetector()
	o, err := New(Config{
		ID:            "y",
		Type:          adts.Account(),
		Guard:         TableGuard{Conflicts: adts.AccountConflicts},
		Detector:      det,
		UpdateInPlace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := txn("a", 1)
	mustInvoke(t, o, a, adts.OpDeposit, value.Int(10))
	mustInvoke(t, o, a, adts.OpWithdraw, value.Int(3))
	// Effects are visible in place before commit.
	if got := o.Base().(adts.AccountState).Balance(); got != 7 {
		t.Errorf("in-place balance = %d, want 7", got)
	}
	o.Abort(a)
	if got := o.Base().(adts.AccountState).Balance(); got != 0 {
		t.Errorf("balance after undo = %d, want 0", got)
	}
	b := txn("b", 2)
	mustInvoke(t, o, b, adts.OpDeposit, value.Int(5))
	o.Commit(b, histories.TSNone)
	if got := o.Base().(adts.AccountState).Balance(); got != 5 {
		t.Errorf("balance after commit = %d, want 5", got)
	}
	if err := o.Err(); err != nil {
		t.Errorf("object corrupted: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	det := NewDetector()
	cases := []Config{
		{},
		{ID: "x"},
		{ID: "x", Type: adts.Account()},
		{ID: "x", Type: adts.Account(), Guard: EscrowGuard{}},                                                                // no detector, no timeout
		{ID: "x", Type: adts.Queue(), Guard: TableGuard{Conflicts: adts.QueueConflicts}, Detector: det, UpdateInPlace: true}, // queue has no inverter
		{ID: "x", Type: adts.Account(), Guard: EscrowGuard{}, Detector: det, UpdateInPlace: true},                            // state-based guard in place
		{ID: "x", Type: adts.Account(), Guard: ExactGuard{Spec: adts.AccountSpec{}}, Detector: det, UpdateInPlace: true},     // state-based guard in place
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := New(Config{ID: "x", Type: adts.Account(), Guard: EscrowGuard{}, Detector: det}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestInvalidOperationError(t *testing.T) {
	var rec testSink
	o, _ := newAccountObject(t, EscrowGuard{}, rec.sink())
	a := txn("a", 1)
	_, err := o.Invoke(a, spec.Invocation{Op: "frobnicate"})
	if !errors.Is(err, cc.ErrInvalidOp) {
		t.Errorf("invalid op error = %v", err)
	}
	if cc.Retryable(err) {
		t.Error("invalid op must not be retryable")
	}
}

func TestCommitUnknownTxnIsNoop(t *testing.T) {
	o, _ := newAccountObject(t, EscrowGuard{}, nil)
	o.Commit(txn("ghost", 9), histories.TSNone)
	o.Abort(txn("ghost", 9))
	if err := o.Prepare(txn("ghost", 9)); !errors.Is(err, cc.ErrUnknownTxn) {
		t.Errorf("prepare of unknown txn = %v", err)
	}
}

func TestStatsCount(t *testing.T) {
	o, _ := newAccountObject(t, EscrowGuard{}, nil)
	a := txn("a", 1)
	mustInvoke(t, o, a, adts.OpDeposit, value.Int(1))
	grants, _ := o.Stats()
	if grants != 1 {
		t.Errorf("grants = %d, want 1", grants)
	}
}
