package locking

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"weihl83/internal/adts"
	"weihl83/internal/cc"
	"weihl83/internal/conflict"
	"weihl83/internal/core"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// stressGuardCase runs a randomized concurrent workload against a single
// object under the given guard, records the history, and verifies with the
// offline checker that it is dynamic atomic — the end-to-end validation of
// Theorem 1 for the locking protocol family.
func stressGuardCase(t *testing.T, name string, ty adts.Type, mkGuard func() Guard, genOp func(rng *rand.Rand) spec.Invocation, workers, opsPer int) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		var rec testSink
		det := NewDetector()
		o, err := New(Config{
			ID:       "x",
			Type:     ty,
			Guard:    mkGuard(),
			Detector: det,
			Sink:     rec.sink(),
		})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		var seq int64
		var seqMu sync.Mutex
		nextTxn := func(worker int) *cc.TxnInfo {
			seqMu.Lock()
			defer seqMu.Unlock()
			seq++
			return &cc.TxnInfo{ID: histories.ActivityID(fmt.Sprintf("w%d.%d", worker, seq)), Seq: seq}
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w) + 1))
				for k := 0; k < opsPer; k++ {
					tx := nextTxn(w)
					det.Register(tx.ID, tx.Seq)
					nOps := 1 + rng.Intn(3)
					aborted := false
					for i := 0; i < nOps; i++ {
						if _, err := o.Invoke(tx, genOp(rng)); err != nil {
							if !cc.Retryable(err) && !errors.Is(err, cc.ErrInvalidOp) {
								t.Errorf("unexpected invoke error: %v", err)
							}
							o.Abort(tx)
							aborted = true
							break
						}
					}
					if aborted {
						det.Forget(tx.ID)
						continue
					}
					if rng.Intn(5) == 0 {
						o.Abort(tx) // voluntary abort: recoverability exercised
					} else {
						o.Commit(tx, histories.TSNone)
					}
					det.Forget(tx.ID)
				}
			}(w)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("stress workload hung")
		}

		if err := o.Err(); err != nil {
			t.Fatalf("object corrupted: %v", err)
		}
		h := rec.history()
		if err := h.WellFormed(); err != nil {
			t.Fatalf("recorded history ill-formed: %v", err)
		}
		ck := core.NewChecker()
		ck.Register("x", ty.Spec)
		if err := ck.DynamicAtomic(h); err != nil {
			t.Fatalf("recorded history not dynamic atomic: %v\n%v", err, h)
		}
	})
}

func TestStressDynamicAtomicity(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	accountOps := func(rng *rand.Rand) spec.Invocation {
		switch rng.Intn(4) {
		case 0:
			return spec.Invocation{Op: adts.OpDeposit, Arg: value.Int(int64(1 + rng.Intn(5)))}
		case 1, 2:
			return spec.Invocation{Op: adts.OpWithdraw, Arg: value.Int(int64(1 + rng.Intn(5)))}
		default:
			return spec.Invocation{Op: adts.OpBalance}
		}
	}
	setOps := func(rng *rand.Rand) spec.Invocation {
		n := value.Int(int64(rng.Intn(4)))
		switch rng.Intn(3) {
		case 0:
			return spec.Invocation{Op: adts.OpInsert, Arg: n}
		case 1:
			return spec.Invocation{Op: adts.OpDelete, Arg: n}
		default:
			return spec.Invocation{Op: adts.OpMember, Arg: n}
		}
	}
	queueOps := func(rng *rand.Rand) spec.Invocation {
		if rng.Intn(3) == 0 {
			return spec.Invocation{Op: adts.OpDequeue}
		}
		return spec.Invocation{Op: adts.OpEnqueue, Arg: value.Int(int64(rng.Intn(3)))}
	}

	// Small transaction counts keep the exact offline check tractable (it
	// explores linear extensions of precedes over every committed txn).
	stressGuardCase(t, "account/escrow", adts.Account(), func() Guard { return EscrowGuard{} }, accountOps, 4, 4)
	stressGuardCase(t, "account/exact", adts.Account(), func() Guard { return ExactGuard{Spec: adts.AccountSpec{}} }, accountOps, 4, 4)
	stressGuardCase(t, "account/table", adts.Account(), func() Guard { return TableGuard{Conflicts: adts.AccountConflicts} }, accountOps, 4, 4)
	stressGuardCase(t, "account/rw", adts.Account(), func() Guard { return RWGuard{IsWrite: adts.AccountIsWrite} }, accountOps, 4, 4)
	stressGuardCase(t, "intset/table", adts.IntSet(), func() Guard { return TableGuard{Conflicts: adts.IntSetConflicts} }, setOps, 4, 4)
	stressGuardCase(t, "intset/exact", adts.IntSet(), func() Guard { return ExactGuard{Spec: adts.IntSetSpec{}} }, setOps, 4, 4)
	stressGuardCase(t, "queue/exact", adts.Queue(), func() Guard { return ExactGuard{Spec: adts.QueueSpec{}} }, queueOps, 3, 4)
	stressGuardCase(t, "queue/table", adts.Queue(), func() Guard { return TableGuard{Conflicts: adts.QueueConflicts} }, queueOps, 3, 4)
	// The tiered cascade must produce dynamic-atomic histories on every
	// type, exactly like the raw exact guard it subsumes.
	stressGuardCase(t, "account/cascade", adts.Account(), func() Guard { return conflict.ForType(adts.Account()) }, accountOps, 4, 4)
	stressGuardCase(t, "intset/cascade", adts.IntSet(), func() Guard { return conflict.ForType(adts.IntSet()) }, setOps, 4, 4)
	stressGuardCase(t, "queue/cascade", adts.Queue(), func() Guard { return conflict.ForType(adts.Queue()) }, queueOps, 3, 4)
}
