package locking

import (
	"testing"
	"time"

	"weihl83/internal/adts"
	"weihl83/internal/core"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// TestSemiQueueConcurrentDequeues shows nondeterminism buying concurrency
// (the paper's §1 citation of [Weihl & Liskov 83]): under the exact guard,
// two transactions dequeue from a two-element semiqueue CONCURRENTLY — the
// object resolves the nondeterminism by handing them different elements.
// The same workload on a FIFO queue blocks the second dequeuer.
func TestSemiQueueConcurrentDequeues(t *testing.T) {
	var rec testSink
	det := NewDetector()
	o, err := New(Config{
		ID:       "sq",
		Type:     adts.SemiQueue(),
		Guard:    ExactGuard{Spec: adts.SemiQueueSpec{}},
		Detector: det,
		Sink:     rec.sink(),
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := txn("seed", 0)
	mustInvoke(t, o, seed, adts.OpEnqueue, value.Int(1))
	mustInvoke(t, o, seed, adts.OpEnqueue, value.Int(2))
	o.Commit(seed, histories.TSNone)

	// Both dequeue without either committing: neither blocks.
	a, b := txn("a", 1), txn("b", 2)
	va := mustInvoke(t, o, a, adts.OpDequeue, value.Nil())
	vb := mustInvoke(t, o, b, adts.OpDequeue, value.Nil())
	if va == vb {
		t.Fatalf("both dequeues took %v; the object must choose different elements", va)
	}
	o.Commit(b, histories.TSNone)
	o.Commit(a, histories.TSNone)

	ck := core.NewChecker()
	ck.Register("sq", adts.SemiQueueSpec{})
	if err := ck.DynamicAtomic(rec.history()); err != nil {
		t.Errorf("semiqueue history not dynamic atomic: %v", err)
	}
	if err := o.Err(); err != nil {
		t.Errorf("object corrupted: %v", err)
	}
}

// TestSemiQueueLastElementStillConflicts: with a single element, the
// second dequeuer must wait (exactly the escrow-like state dependence).
func TestSemiQueueLastElementStillConflicts(t *testing.T) {
	det := NewDetector()
	o, err := New(Config{
		ID:       "sq",
		Type:     adts.SemiQueue(),
		Guard:    ExactGuard{Spec: adts.SemiQueueSpec{}},
		Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := txn("seed", 0)
	mustInvoke(t, o, seed, adts.OpEnqueue, value.Int(7))
	o.Commit(seed, histories.TSNone)

	a, b := txn("a", 1), txn("b", 2)
	if got := mustInvoke(t, o, a, adts.OpDequeue, value.Nil()); got != value.Int(7) {
		t.Fatalf("a dequeued %v", got)
	}
	done := make(chan value.Value, 1)
	go func() {
		v, err := o.Invoke(b, spec.Invocation{Op: adts.OpDequeue})
		if err != nil {
			done <- value.Str(err.Error())
			return
		}
		done <- v
	}()
	select {
	case v := <-done:
		t.Fatalf("b's dequeue was not blocked (got %v)", v)
	case <-time.After(50 * time.Millisecond):
	}
	// Once a aborts, the element is available again and b gets it.
	o.Abort(a)
	select {
	case v := <-done:
		if v != value.Int(7) {
			t.Errorf("b dequeued %v after a's abort", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("b never unblocked")
	}
	o.Commit(b, histories.TSNone)
}

// TestSemiQueueFIFOContrast: the same two-dequeuer scenario on a FIFO
// queue blocks, because both dequeues must return the unique front element.
func TestSemiQueueFIFOContrast(t *testing.T) {
	det := NewDetector()
	o, err := New(Config{
		ID:       "q",
		Type:     adts.Queue(),
		Guard:    ExactGuard{Spec: adts.QueueSpec{}},
		Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := txn("seed", 0)
	mustInvoke(t, o, seed, adts.OpEnqueue, value.Int(1))
	mustInvoke(t, o, seed, adts.OpEnqueue, value.Int(2))
	o.Commit(seed, histories.TSNone)

	a, b := txn("a", 1), txn("b", 2)
	mustInvoke(t, o, a, adts.OpDequeue, value.Nil())
	done := make(chan struct{})
	go func() {
		_, _ = o.Invoke(b, spec.Invocation{Op: adts.OpDequeue})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("FIFO dequeue was not blocked; the semiqueue comparison is vacuous")
	case <-time.After(50 * time.Millisecond):
	}
	o.Commit(a, histories.TSNone)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("b never unblocked")
	}
	o.Commit(b, histories.TSNone)
}
