package locking

import (
	"errors"

	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/conflict"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func call(op string, arg, res value.Value) spec.Call {
	return spec.Call{Inv: spec.Invocation{Op: op, Arg: arg}, Result: res}
}

// allow invokes a guard and fails the test on a guard error (the tests
// below exercise decision logic; the error path has its own test).
func allow(t *testing.T, g Guard, base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) bool {
	t.Helper()
	ok, err := g.Allowed(base, mine, cand, others)
	if err != nil {
		t.Fatalf("guard error: %v", err)
	}
	return ok
}

func TestRWGuard(t *testing.T) {
	g := RWGuard{IsWrite: adts.AccountIsWrite}
	base := adts.AccountSpec{}.Init()
	dep := call(adts.OpDeposit, value.Int(5), value.Unit())
	bal := call(adts.OpBalance, value.Nil(), value.Int(0))

	if !allow(t, g, base, nil, dep, nil) {
		t.Error("write with no others denied")
	}
	if allow(t, g, base, nil, dep, [][]spec.Call{{bal}}) {
		t.Error("write allowed against reader")
	}
	if allow(t, g, base, nil, bal, [][]spec.Call{{dep}}) {
		t.Error("read allowed against writer")
	}
	if !allow(t, g, base, nil, bal, [][]spec.Call{{bal}}) {
		t.Error("read denied against reader")
	}
}

func TestTableGuard(t *testing.T) {
	g := TableGuard{Conflicts: adts.IntSetConflicts}
	base := adts.IntSetSpec{}.Init()
	i3 := call(adts.OpInsert, value.Int(3), value.Unit())
	m3 := call(adts.OpMember, value.Int(3), value.Bool(true))
	m4 := call(adts.OpMember, value.Int(4), value.Bool(false))

	if !allow(t, g, base, nil, i3, [][]spec.Call{{m4}}) {
		t.Error("insert(3) denied against member(4)")
	}
	if allow(t, g, base, nil, i3, [][]spec.Call{{m4, m3}}) {
		t.Error("insert(3) allowed against member(3)")
	}
}

// TestExactGuardConcurrentWithdrawals reproduces §5.1: with a committed
// balance of 10, withdrawals of 4 and 3 by different transactions are both
// grantable under state-based dynamic atomicity, but a further withdrawal
// of 5 is not (some order would bounce it) — the three-transaction case
// where pairwise reasoning is unsound.
func TestExactGuardConcurrentWithdrawals(t *testing.T) {
	g := ExactGuard{Spec: adts.AccountSpec{}}
	base := spec.State(adts.AccountState(10))
	w4 := call(adts.OpWithdraw, value.Int(4), value.Unit())
	w3 := call(adts.OpWithdraw, value.Int(3), value.Unit())
	w5 := call(adts.OpWithdraw, value.Int(5), value.Unit())

	if !allow(t, g, base, nil, w4, nil) {
		t.Error("first withdrawal denied")
	}
	if !allow(t, g, base, nil, w3, [][]spec.Call{{w4}}) {
		t.Error("second withdrawal denied with 10 >= 4+3")
	}
	if allow(t, g, base, nil, w5, [][]spec.Call{{w4}, {w3}}) {
		t.Error("third withdrawal allowed although 4+3+5 > 10")
	}
}

// TestEscrowGuardAgreesWithExactOnWithdrawals: the O(1) escrow rule and the
// exhaustive check agree on the mutator-only cases.
func TestEscrowGuardAgreesWithExactOnWithdrawals(t *testing.T) {
	exact := ExactGuard{Spec: adts.AccountSpec{}}
	escrow := EscrowGuard{}
	w := func(n int64) spec.Call { return call(adts.OpWithdraw, value.Int(n), value.Unit()) }
	d := func(n int64) spec.Call { return call(adts.OpDeposit, value.Int(n), value.Unit()) }
	cases := []struct {
		bal    int64
		mine   []spec.Call
		cand   spec.Call
		others [][]spec.Call
	}{
		{10, nil, w(4), nil},
		{10, nil, w(3), [][]spec.Call{{w(4)}}},
		{10, nil, w(5), [][]spec.Call{{w(4)}, {w(3)}}},
		{10, []spec.Call{w(2)}, w(4), [][]spec.Call{{w(4)}}},
		{0, nil, w(4), [][]spec.Call{{d(10)}}},
		{0, []spec.Call{d(10)}, w(4), nil},
		{3, nil, d(1), [][]spec.Call{{w(2)}}},
		{5, nil, w(4), [][]spec.Call{{d(1), w(3)}}},
	}
	for i, c := range cases {
		base := spec.State(adts.AccountState(c.bal))
		got := allow(t, escrow, base, c.mine, c.cand, c.others)
		want := allow(t, exact, base, c.mine, c.cand, c.others)
		if got != want {
			t.Errorf("case %d: escrow=%t exact=%t (bal=%d cand=%v others=%v)", i, got, want, c.bal, c.cand, c.others)
		}
	}
}

func TestEscrowGuardObserverRules(t *testing.T) {
	g := EscrowGuard{}
	base := spec.State(adts.AccountState(10))
	bal := call(adts.OpBalance, value.Nil(), value.Int(10))
	dep := call(adts.OpDeposit, value.Int(5), value.Unit())
	wOK := call(adts.OpWithdraw, value.Int(4), value.Unit())
	wFail := call(adts.OpWithdraw, value.Int(100), adts.InsufficientFunds)

	// Balance is granted only when the others' pending work nets to zero.
	if !allow(t, g, base, nil, bal, nil) {
		t.Error("balance denied with no others")
	}
	if !allow(t, g, base, nil, bal, [][]spec.Call{{bal}}) {
		t.Error("balance denied against balance")
	}
	if allow(t, g, base, nil, bal, [][]spec.Call{{dep}}) {
		t.Error("balance allowed against pending deposit")
	}
	if !allow(t, g, base, nil, bal, [][]spec.Call{{wFail}}) {
		t.Error("balance denied against a no-effect failed withdrawal")
	}
	// A deposit can flip another's recorded failure or balance: denied.
	if allow(t, g, base, nil, dep, [][]spec.Call{{wFail}}) {
		t.Error("deposit allowed against recorded insufficient_funds")
	}
	if allow(t, g, base, nil, dep, [][]spec.Call{{bal}}) {
		t.Error("deposit allowed against recorded balance")
	}
	if !allow(t, g, base, nil, dep, [][]spec.Call{{wOK}}) {
		t.Error("deposit denied against plain withdrawal")
	}
	// A successful withdrawal changes recorded balances: denied.
	if allow(t, g, base, nil, wOK, [][]spec.Call{{bal}}) {
		t.Error("withdrawal allowed against recorded balance")
	}
	// But it cannot flip a recorded failure: allowed.
	if !allow(t, g, base, nil, wOK, [][]spec.Call{{wFail}}) {
		t.Error("withdrawal denied against recorded insufficient_funds")
	}
	// A failure is granted only if even the best case cannot cover it.
	if !allow(t, g, base, nil, wFail, [][]spec.Call{{dep}}) {
		t.Error("clear failure denied")
	}
	nearMiss := call(adts.OpWithdraw, value.Int(12), adts.InsufficientFunds)
	if allow(t, g, base, nil, nearMiss, [][]spec.Call{{dep}}) {
		t.Error("failure allowed although the pending deposit could cover it")
	}
	// Non-account state: a configuration error, reported as such rather
	// than silently denied (a silent deny would park the requester in the
	// wait set forever — nothing about the state can change to admit it).
	if ok, err := g.Allowed(adts.IntSetSpec{}.Init(), nil, bal, nil); ok || !errors.Is(err, conflict.ErrTypeMismatch) {
		t.Errorf("escrow on non-account state: ok=%t err=%v, want ErrTypeMismatch", ok, err)
	}
	// Unknown op: conservatively denied (no error; the op may be valid for
	// a future summariser, and denial is always sound).
	if allow(t, g, base, nil, call("bogus", value.Nil(), value.Nil()), nil) {
		t.Error("escrow accepted an unknown op")
	}
}

// TestExactGuardQueueScenario is the §5.1 queue example at guard level:
// interleaved enqueues by two transactions are admissible (every order of
// the two blocks replays ok), while a dequeue concurrent with them is not.
func TestExactGuardQueueScenario(t *testing.T) {
	g := ExactGuard{Spec: adts.QueueSpec{}}
	base := adts.QueueSpec{}.Init()
	enq := func(n int64) spec.Call { return call(adts.OpEnqueue, value.Int(n), value.Unit()) }

	// a has enqueued 1; b requests enqueue(1): fine.
	if !allow(t, g, base, nil, enq(1), [][]spec.Call{{enq(1)}}) {
		t.Error("b's enqueue(1) denied")
	}
	// a has [1]; a requests enqueue(2) while b holds [1]: fine.
	if !allow(t, g, base, []spec.Call{enq(1)}, enq(2), [][]spec.Call{{enq(1)}}) {
		t.Error("a's enqueue(2) denied")
	}
	// Full paper interleaving: a=[1,2], b=[1], b requests enqueue(2).
	if !allow(t, g, base, []spec.Call{enq(1), enq(2)}, enq(2), [][]spec.Call{{enq(1), enq(2)}}) {
		t.Error("final enqueue denied; the paper's queue history must be admissible")
	}
	// A dequeue while both are active: the result depends on the order.
	dq := call(adts.OpDequeue, value.Nil(), value.Int(1))
	if allow(t, g, base, nil, dq, [][]spec.Call{{enq(1), enq(2)}, {enq(1), enq(2)}}) {
		t.Error("dequeue allowed while enqueuers are uncommitted")
	}
}

// TestExactGuardSubsetSensitivity: feasibility must hold for every SUBSET
// of the other transactions (any of them may abort), not just the full set.
func TestExactGuardSubsetSensitivity(t *testing.T) {
	g := ExactGuard{Spec: adts.IntSetSpec{}}
	base := adts.IntSetSpec{}.Init()
	ins := call(adts.OpInsert, value.Int(3), value.Unit())
	memTrue := call(adts.OpMember, value.Int(3), value.Bool(true))
	// member(3)=true is infeasible if the inserting transaction aborts, and
	// infeasible in the order me-first; it must be denied.
	if allow(t, g, base, nil, memTrue, [][]spec.Call{{ins}}) {
		t.Error("member(3)=true granted against an uncommitted insert")
	}
}

func TestExactGuardBlockCap(t *testing.T) {
	g := ExactGuard{Spec: adts.AccountSpec{}, MaxBlocks: 2}
	base := spec.State(adts.AccountState(100))
	w := call(adts.OpWithdraw, value.Int(1), value.Unit())
	others := [][]spec.Call{{w}, {w}} // 3 blocks total > cap
	if allow(t, g, base, nil, w, others) {
		t.Error("guard over block cap must conservatively deny")
	}
	if !allow(t, g, base, nil, w, others[:1]) {
		t.Error("guard within cap must grant")
	}
}

func TestExactGuardNondeterministicSpecIsConservative(t *testing.T) {
	// pick's recorded result constrains the state; the guard must still
	// terminate and stay sound (it may be conservative).
	g := ExactGuard{Spec: adts.IntSetSpec{}}
	base := adts.IntSetSpec{}.Init()
	ins1 := call(adts.OpInsert, value.Int(1), value.Unit())
	pick1 := call(adts.OpPick, value.Nil(), value.Int(1))
	if allow(t, g, base, []spec.Call{pick1}, pick1, [][]spec.Call{{ins1}}) {
		t.Error("pick=1 cannot be granted when the only inserter may abort")
	}
}
