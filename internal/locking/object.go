package locking

import (
	"errors"
	"fmt"
	"time"

	"sync"

	"weihl83/internal/adts"
	"weihl83/internal/cc"
	"weihl83/internal/ccrt"
	"weihl83/internal/histories"
	"weihl83/internal/obs"
	"weihl83/internal/recovery"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Observability: conflict-wait metrics for the locking protocols. Waits
// are the slow path, so the extra clock reads cost nothing on granted
// invocations. A wait is entered exactly when the guard denies every
// candidate outcome — a conflict — so the canonical counter lives under
// the uniform cc.<protocol>.conflicts scheme, with the historical
// locking.waits name kept as an alias for one release.
var (
	obsGrants  = obs.Default.Counter("locking.grants")
	obsWaits   = obs.Default.AliasCounter("locking.waits", "cc.locking.conflicts")
	obsWaitLat = obs.Default.Histogram("locking.wait_ns")
	obsTrace   = obs.Default.Tracer()
)

// Config configures a locking object.
type Config struct {
	// ID is the object's identifier in recorded histories. Required.
	ID histories.ObjectID
	// Type is the abstract data type the object implements. Required.
	Type adts.Type
	// Guard is the conflict rule. Required.
	Guard Guard
	// Detector enables waits-for deadlock detection. Optional; when nil,
	// WaitTimeout must be positive (timeout-only deadlock handling).
	Detector *Detector
	// WaitTimeout bounds each blocked wait; zero means wait forever (only
	// allowed with a Detector).
	WaitTimeout time.Duration
	// Sink receives history events; nil disables recording.
	Sink cc.EventSink
	// UpdateInPlace selects undo-log recovery (the object's shared state is
	// mutated immediately and compensations are logged) instead of the
	// default deferred-update intentions lists. Requires Type.Invert and is
	// incompatible with state-dependent guards (ExactGuard, EscrowGuard),
	// whose soundness argument assumes the base state excludes uncommitted
	// effects.
	UpdateInPlace bool
	// Initial overrides the committed base state (crash recovery restores
	// an object from a write-ahead log). Nil selects Type.Spec.Init().
	Initial spec.State
}

// txnEntry is the per-transaction state at one object.
type txnEntry struct {
	intentions recovery.IntentionsList
	undo       recovery.UndoLog
	prepared   bool
}

// Object is a locking-protocol object: the generalisation of two-phase
// locking the paper calls dynamic atomicity, with recovery by intentions
// lists (default) or undo logs. It implements cc.Resource.
type Object struct {
	id          histories.ObjectID
	ty          adts.Type
	guard       Guard
	detector    *Detector
	waitTimeout time.Duration
	sink        cc.EventSink
	inPlace     bool

	mu      sync.Mutex
	waiters ccrt.WaitSet // blocked invokers, one wakeup channel each
	base    spec.State
	active  ccrt.Table[txnEntry]
	broken  error // set if commit-time replay diverges (protocol bug guardrail)

	// stats, maintained under mu.
	grants int64
	waits  int64
}

var _ cc.Resource = (*Object)(nil)

// New validates cfg and returns a locking object.
func New(cfg Config) (*Object, error) {
	if cfg.ID == "" {
		return nil, errors.New("locking: Config.ID is required")
	}
	if cfg.Type.Spec == nil {
		return nil, errors.New("locking: Config.Type.Spec is required")
	}
	if cfg.Guard == nil {
		return nil, errors.New("locking: Config.Guard is required")
	}
	if cfg.Detector == nil && cfg.WaitTimeout <= 0 {
		return nil, errors.New("locking: need a Detector or a positive WaitTimeout")
	}
	if cfg.UpdateInPlace {
		if cfg.Type.Invert == nil {
			return nil, fmt.Errorf("locking: type %s does not support update-in-place recovery", cfg.Type.Spec.Name())
		}
		switch cfg.Guard.(type) {
		case ExactGuard, *ExactGuard, EscrowGuard, *EscrowGuard:
			return nil, errors.New("locking: update-in-place recovery is incompatible with state-based guards")
		}
		// Engines (and any future guard) self-report state-basedness.
		if sb, ok := cfg.Guard.(interface{ StateBased() bool }); ok && sb.StateBased() {
			return nil, errors.New("locking: update-in-place recovery is incompatible with state-based guards")
		}
	}
	base := cfg.Initial
	if base == nil {
		base = cfg.Type.Spec.Init()
	}
	o := &Object{
		id:          cfg.ID,
		ty:          cfg.Type,
		guard:       cfg.Guard,
		detector:    cfg.Detector,
		waitTimeout: cfg.WaitTimeout,
		sink:        cfg.Sink,
		inPlace:     cfg.UpdateInPlace,
		base:        base,
	}
	if o.detector != nil {
		o.detector.RegisterWake(o.wakeTxn)
	}
	return o, nil
}

// ObjectID implements cc.Resource.
func (o *Object) ObjectID() histories.ObjectID { return o.id }

// Err reports an internal protocol invariant violation detected at commit
// (nil in correct operation). Tests assert it stays nil.
func (o *Object) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.broken
}

// Base returns the committed state (for tests and tools).
func (o *Object) Base() spec.State {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.base
}

// Stats returns (granted invocations, waits entered).
func (o *Object) Stats() (grants, waits int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.grants, o.waits
}

// changed wakes all blocked waiters: claims were released (commit or
// abort) or the base state moved, so any of them may now be grantable.
// Callers must hold o.mu.
func (o *Object) changed() {
	o.waiters.WakeAll()
}

// invalidateGuard drops a cascading guard's memoised decisions after a
// commit or abort moved the committed base or drained pending blocks. The
// cache keys cover the full decision input, so stale entries could never
// be wrong — invalidating keeps the cache from accumulating dead keys.
// Callers must hold o.mu.
func (o *Object) invalidateGuard() {
	if inv, ok := o.guard.(interface{ InvalidateConflictCache() }); ok {
		inv.InvalidateConflictCache()
	}
}

// wakeTxn is the detector’s targeted doom hook: wake exactly the doomed
// transaction if it is blocked here, leave every other waiter asleep.
func (o *Object) wakeTxn(txn histories.ActivityID) {
	o.mu.Lock()
	o.waiters.Wake(txn)
	o.mu.Unlock()
}

// PendingCalls returns a copy of txn's intentions at this object (used by
// the write-ahead log and by the hybrid protocol's version log).
func (o *Object) PendingCalls(txn *cc.TxnInfo) []spec.Call {
	o.mu.Lock()
	defer o.mu.Unlock()
	e := o.active.Lookup(txn.ID)
	if e == nil {
		return nil
	}
	return append([]spec.Call(nil), e.intentions.Calls()...)
}

// Invoke implements cc.Resource: it blocks until the call is grantable,
// the transaction is doomed, or the wait times out.
func (o *Object) Invoke(txn *cc.TxnInfo, inv spec.Invocation) (value.Value, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sink.Emit(histories.Invoke(o.id, txn.ID, inv.Op, inv.Arg))
	e := o.active.Get(txn.ID)

	var deadline <-chan time.Time
	if o.waitTimeout > 0 {
		timer := time.NewTimer(o.waitTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	// The wait channel is allocated on first block and re-registered on every
	// pass through the loop; this deferred cleanup (running before the
	// deferred unlock, so still under o.mu) covers every return path.
	var waitCh chan struct{}
	defer func() {
		if waitCh != nil {
			o.waiters.Unregister(txn.ID)
		}
	}()
	for {
		if o.detector != nil {
			if reason := o.detector.Doomed(txn.ID); reason != nil {
				return value.Nil(), fmt.Errorf("locking: %s at %s: %w", txn.ID, o.id, reason)
			}
		}
		// Compute candidate results from the transaction's view. A
		// nondeterministic operation offers several outcomes; the object
		// may choose ANY of them (the specification permits each), so it
		// picks the first one the guard admits — the way nondeterminism
		// buys concurrency (e.g. two semiqueue dequeues choose different
		// elements and proceed in parallel).
		view, err := o.viewOf(e)
		if err != nil {
			o.corrupt(err)
			return value.Nil(), err
		}
		outs := view.Step(inv)
		if len(outs) == 0 {
			return value.Nil(), fmt.Errorf("locking: %s at %s: %w: %s not permitted in state %s",
				txn.ID, o.id, cc.ErrInvalidOp, inv, view.Key())
		}
		others, holders := o.othersOf(txn.ID)
		for _, out := range outs {
			cand := spec.Call{Inv: inv, Result: out.Result}
			allowed, gerr := o.guard.Allowed(o.guardBase(), e.intentions.Calls(), cand, others)
			if gerr != nil {
				// The guard cannot decide (misconfiguration, e.g. a
				// state-based guard over the wrong state type). Fail the
				// invocation rather than wait on a conflict that is not one.
				return value.Nil(), fmt.Errorf("locking: %s at %s: guard: %w", txn.ID, o.id, gerr)
			}
			if allowed {
				o.grant(txn, e, cand, out.Next)
				return out.Result, nil
			}
		}
		// Blocked: register the wait and sleep until something changes. The
		// object lock is released before calling the detector because
		// SetWaiting may fire wake hooks that re-acquire it; registering
		// under the lock (and draining the latched channel there, where no
		// signaller can race) prevents lost wake-ups.
		o.waits++
		obsWaits.Inc()
		waitStart := time.Now()
		if waitCh == nil {
			waitCh = make(chan struct{}, 1)
		} else {
			select {
			case <-waitCh:
			default:
			}
		}
		o.waiters.Register(txn.ID, waitCh)
		o.mu.Unlock()
		if o.detector != nil {
			if reason := o.detector.SetWaiting(txn.ID, holders); reason != nil {
				o.detector.ClearWaiting(txn.ID)
				o.mu.Lock() // restore the invariant for the deferred unlock
				return value.Nil(), fmt.Errorf("locking: %s blocked at %s: %w", txn.ID, o.id, reason)
			}
		}
		var timedOut bool
		select {
		case <-waitCh:
		case <-deadline:
			timedOut = true
		}
		if o.detector != nil {
			o.detector.ClearWaiting(txn.ID)
		}
		blocked := time.Since(waitStart)
		obsWaitLat.Observe(int64(blocked))
		if obsTrace.Enabled() {
			obsTrace.Record(obs.TraceEvent{Kind: obs.KindWait, Txn: string(txn.ID), Obj: string(o.id), Dur: blocked})
		}
		o.mu.Lock()
		if timedOut {
			return value.Nil(), fmt.Errorf("locking: %s waited %v at %s: %w", txn.ID, o.waitTimeout, o.id, cc.ErrTimeout)
		}
	}
}

// guardBase is the state the guard reasons from: the committed base for
// deferred update. For update-in-place the base already contains
// uncommitted effects; the static guards permitted in that mode ignore it.
func (o *Object) guardBase() spec.State { return o.base }

// viewOf computes the state a transaction observes. Callers must hold o.mu.
func (o *Object) viewOf(e *txnEntry) (spec.State, error) {
	if o.inPlace {
		return o.base, nil
	}
	return e.intentions.View(o.base)
}

// grant records the call. Callers must hold o.mu.
func (o *Object) grant(txn *cc.TxnInfo, e *txnEntry, cand spec.Call, next spec.State) {
	o.grants++
	obsGrants.Inc()
	if o.inPlace {
		e.undo.Record(o.ty.Invert(o.base, cand.Inv, cand.Result))
		o.base = next
	}
	e.intentions.Add(cand)
	if o.detector != nil {
		o.detector.ClearWaiting(txn.ID)
	}
	o.sink.Emit(histories.Return(o.id, txn.ID, cand.Result))
}

// othersOf returns the non-empty pending blocks of the other active
// transactions and their ids. Callers must hold o.mu. Iteration order is
// made deterministic for reproducible guard decisions.
func (o *Object) othersOf(me histories.ActivityID) ([][]spec.Call, []histories.ActivityID) {
	ids := o.active.SortedIDs(func(id histories.ActivityID, e *txnEntry) bool {
		return id != me && e.intentions.Len() > 0
	})
	blocks := make([][]spec.Call, len(ids))
	for i, id := range ids {
		blocks[i] = o.active.Lookup(id).intentions.Calls()
	}
	return blocks, ids
}

// Prepare implements cc.Resource.
func (o *Object) Prepare(txn *cc.TxnInfo) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.detector != nil {
		if reason := o.detector.Doomed(txn.ID); reason != nil {
			return fmt.Errorf("locking: prepare %s at %s: %w", txn.ID, o.id, reason)
		}
	}
	e := o.active.Lookup(txn.ID)
	if e == nil {
		return fmt.Errorf("locking: prepare %s at %s: %w", txn.ID, o.id, cc.ErrUnknownTxn)
	}
	e.prepared = true
	return nil
}

// Commit implements cc.Resource: the transaction's effects become part of
// the committed base state, and the commit event (timestamped if ts is
// non-zero, for hybrid atomicity) is recorded.
func (o *Object) Commit(txn *cc.TxnInfo, ts histories.Timestamp) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e := o.active.Lookup(txn.ID)
	if e == nil {
		// Committing a transaction that never invoked here is a no-op.
		return
	}
	if !o.inPlace {
		next, err := e.intentions.Apply(o.base)
		if err != nil {
			o.corrupt(fmt.Errorf("locking: commit %s at %s: %w", txn.ID, o.id, err))
			o.active.Delete(txn.ID)
			o.changed()
			return
		}
		o.base = next
	}
	o.active.Delete(txn.ID)
	o.invalidateGuard()
	if ts != histories.TSNone {
		o.sink.Emit(histories.CommitTS(o.id, txn.ID, ts))
	} else {
		o.sink.Emit(histories.Commit(o.id, txn.ID))
	}
	o.changed()
}

// Abort implements cc.Resource: intentions are discarded (deferred update)
// or compensated (update in place), and the abort event is recorded.
func (o *Object) Abort(txn *cc.TxnInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e := o.active.Lookup(txn.ID)
	if e == nil {
		return
	}
	if o.inPlace {
		restored, err := e.undo.Undo(o.base)
		if err != nil {
			o.corrupt(fmt.Errorf("locking: abort %s at %s: %w", txn.ID, o.id, err))
		} else {
			o.base = restored
		}
	}
	o.active.Delete(txn.ID)
	o.invalidateGuard()
	o.sink.Emit(histories.Abort(o.id, txn.ID))
	o.changed()
}

// corrupt records the first internal invariant violation.
func (o *Object) corrupt(err error) {
	if o.broken == nil {
		o.broken = err
	}
}
