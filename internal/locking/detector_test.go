package locking

import (
	"errors"
	"testing"

	"weihl83/internal/cc"
	"weihl83/internal/histories"
)

func TestDetectorNoCycleNoDoom(t *testing.T) {
	d := NewDetector()
	d.Register("a", 1)
	d.Register("b", 2)
	if err := d.SetWaiting("a", ids("b")); err != nil {
		t.Errorf("SetWaiting with no cycle doomed the waiter: %v", err)
	}
	if d.Doomed("a") != nil || d.Doomed("b") != nil {
		t.Error("doomed without a cycle")
	}
}

func TestDetectorTwoCycleVictimIsYoungest(t *testing.T) {
	d := NewDetector()
	d.Register("a", 1)
	d.Register("b", 2)
	if err := d.SetWaiting("a", ids("b")); err != nil {
		t.Fatalf("a doomed: %v", err)
	}
	err := d.SetWaiting("b", ids("a"))
	if !errors.Is(err, cc.ErrDeadlock) {
		t.Fatalf("b (youngest) not doomed: %v", err)
	}
	if d.Doomed("a") != nil {
		t.Error("oldest transaction doomed")
	}
}

func TestDetectorThreeCycle(t *testing.T) {
	d := NewDetector()
	d.Register("a", 1)
	d.Register("b", 2)
	d.Register("c", 3)
	if err := d.SetWaiting("a", ids("b")); err != nil {
		t.Fatal(err)
	}
	if err := d.SetWaiting("b", ids("c")); err != nil {
		t.Fatal(err)
	}
	// Closing the cycle dooms c (youngest), even though c is the waiter.
	err := d.SetWaiting("c", ids("a"))
	if !errors.Is(err, cc.ErrDeadlock) {
		t.Fatalf("cycle not detected: %v", err)
	}
	if d.Doomed("a") != nil || d.Doomed("b") != nil {
		t.Error("non-victims doomed")
	}
}

func TestDetectorVictimElsewhereInCycle(t *testing.T) {
	d := NewDetector()
	d.Register("a", 1)
	d.Register("b", 9) // youngest
	if err := d.SetWaiting("b", ids("a")); err != nil {
		t.Fatal(err)
	}
	// a closes the cycle; the victim must be b, not the waiter a.
	if err := d.SetWaiting("a", ids("b")); err != nil {
		t.Fatalf("waiter doomed although it is the oldest: %v", err)
	}
	if !errors.Is(d.Doomed("b"), cc.ErrDeadlock) {
		t.Error("youngest not doomed")
	}
}

func TestDetectorBroadcastOnDoom(t *testing.T) {
	d := NewDetector()
	called := 0
	d.RegisterBroadcast(func() { called++ })
	d.Register("a", 1)
	d.Register("b", 2)
	if err := d.SetWaiting("a", ids("b")); err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Error("broadcast fired without a doom")
	}
	_ = d.SetWaiting("b", ids("a"))
	if called == 0 {
		t.Error("broadcast did not fire on doom")
	}
	d.Doom("a", cc.ErrDoomed)
	if called < 2 {
		t.Error("explicit Doom did not broadcast")
	}
	if !errors.Is(d.Doomed("a"), cc.ErrDoomed) {
		t.Error("explicit doom reason lost")
	}
}

func TestDetectorForgetClears(t *testing.T) {
	d := NewDetector()
	d.Register("a", 1)
	d.Doom("a", cc.ErrDoomed)
	d.Forget("a")
	if d.Doomed("a") != nil {
		t.Error("Forget did not clear doom")
	}
}

func TestDetectorDoomedEdgesIgnored(t *testing.T) {
	d := NewDetector()
	d.Register("a", 1)
	d.Register("b", 2)
	d.Register("c", 3)
	d.Doom("b", cc.ErrDoomed)
	// a waits for doomed b, which "waits" for a — but b's edges are dead.
	if err := d.SetWaiting("b", ids("a")); !errors.Is(err, cc.ErrDoomed) {
		t.Errorf("doomed waiter SetWaiting = %v", err)
	}
	if err := d.SetWaiting("a", ids("b")); err != nil {
		t.Errorf("cycle through doomed transaction treated as live: %v", err)
	}
}

// ids builds an ActivityID slice from string literals.
func ids(ss ...string) []histories.ActivityID {
	out := make([]histories.ActivityID, len(ss))
	for i, s := range ss {
		out[i] = histories.ActivityID(s)
	}
	return out
}
