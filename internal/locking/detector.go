package locking

import (
	"sync"

	"weihl83/internal/cc"
	"weihl83/internal/histories"
)

// Detector is the global waits-for-graph deadlock detector. Objects report
// "transaction W is waiting for holders H₁…Hₙ"; the detector looks for a
// cycle through the new edges and, if it finds one, dooms the youngest
// transaction in the cycle (the one with the largest birth sequence
// number). Doomed transactions are woken via the broadcast hooks the
// objects register and observe their fate through Doomed.
type Detector struct {
	mu         sync.Mutex
	waits      map[histories.ActivityID]map[histories.ActivityID]bool
	seq        map[histories.ActivityID]int64
	doomed     map[histories.ActivityID]error
	broadcasts []func()
	wakes      []func(histories.ActivityID)
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{
		waits:  make(map[histories.ActivityID]map[histories.ActivityID]bool),
		seq:    make(map[histories.ActivityID]int64),
		doomed: make(map[histories.ActivityID]error),
	}
}

// RegisterBroadcast adds a hook the detector calls (outside its lock)
// whenever it dooms a transaction, so blocked waiters re-examine their
// state. Broadcast hooks wake every waiter at the registering object;
// prefer RegisterWake, which lets the object wake only the victim.
func (d *Detector) RegisterBroadcast(f func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.broadcasts = append(d.broadcasts, f)
}

// RegisterWake adds a targeted hook the detector calls (outside its lock)
// with each doomed transaction's id. The object hosting that transaction's
// blocked wait wakes exactly that waiter; every other object's hook is a
// cheap map miss. This replaces the old doom-time broadcast, under which a
// single deadlock victim woke every blocked transaction in the system (a
// thundering herd re-running every guard to no effect).
func (d *Detector) RegisterWake(f func(histories.ActivityID)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wakes = append(d.wakes, f)
}

// Register announces a transaction and its birth sequence number.
func (d *Detector) Register(txn histories.ActivityID, seq int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq[txn] = seq
}

// Forget removes all record of a finished transaction.
func (d *Detector) Forget(txn histories.ActivityID) {
	d.mu.Lock()
	delete(d.waits, txn)
	delete(d.seq, txn)
	delete(d.doomed, txn)
	d.mu.Unlock()
}

// Doomed returns the abort reason assigned to txn, or nil.
func (d *Detector) Doomed(txn histories.ActivityID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doomed[txn]
}

// Doom marks txn for abort with the given reason (e.g. a user-initiated
// abort of a blocked transaction) and wakes its waiter.
func (d *Detector) Doom(txn histories.ActivityID, reason error) {
	d.mu.Lock()
	if d.doomed[txn] == nil {
		d.doomed[txn] = reason
	}
	broadcasts := append([]func(){}, d.broadcasts...)
	wakes := append([]func(histories.ActivityID){}, d.wakes...)
	d.mu.Unlock()
	d.fire(broadcasts, wakes, []histories.ActivityID{txn})
}

// fire runs the wake hooks for each doomed transaction and any legacy
// broadcast hooks, outside d.mu (hooks re-acquire object locks).
func (d *Detector) fire(broadcasts []func(), wakes []func(histories.ActivityID), doomed []histories.ActivityID) {
	for _, txn := range doomed {
		for _, f := range wakes {
			f(txn)
		}
	}
	for _, f := range broadcasts {
		f()
	}
}

// SetWaiting records that waiter is blocked on holders, runs cycle
// detection, and returns the waiter's doom reason if the waiter itself is
// (or became) doomed. Victim selection dooms the youngest transaction on
// the detected cycle; if that victim is not the waiter, the waiter keeps
// waiting (the victim is woken by broadcast).
func (d *Detector) SetWaiting(waiter histories.ActivityID, holders []histories.ActivityID) error {
	d.mu.Lock()
	set := make(map[histories.ActivityID]bool, len(holders))
	for _, h := range holders {
		if h != waiter {
			set[h] = true
		}
	}
	d.waits[waiter] = set

	var doomedNow []histories.ActivityID
	for {
		cycle := d.findCycle(waiter)
		if cycle == nil {
			break
		}
		victim := cycle[0]
		for _, t := range cycle[1:] {
			if d.seq[t] > d.seq[victim] {
				victim = t
			}
		}
		d.doomed[victim] = cc.ErrDeadlock
		// A doomed transaction no longer waits; removing its edges breaks
		// the cycle so detection can continue for any remaining cycles.
		delete(d.waits, victim)
		doomedNow = append(doomedNow, victim)
	}
	err := d.doomed[waiter]
	broadcasts := append([]func(){}, d.broadcasts...)
	wakes := append([]func(histories.ActivityID){}, d.wakes...)
	d.mu.Unlock()

	if len(doomedNow) > 0 {
		d.fire(broadcasts, wakes, doomedNow)
	}
	return err
}

// ClearWaiting records that waiter is no longer blocked.
func (d *Detector) ClearWaiting(waiter histories.ActivityID) {
	d.mu.Lock()
	delete(d.waits, waiter)
	d.mu.Unlock()
}

// findCycle returns some cycle reachable from start in the waits-for
// graph, or nil. Doomed transactions are skipped: they no longer hold their
// claims against progress once aborted.
func (d *Detector) findCycle(start histories.ActivityID) []histories.ActivityID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[histories.ActivityID]int)
	var stack []histories.ActivityID
	var cycle []histories.ActivityID

	var dfs func(n histories.ActivityID) bool
	dfs = func(n histories.ActivityID) bool {
		color[n] = gray
		stack = append(stack, n)
		for m := range d.waits[n] {
			if d.doomed[m] != nil {
				continue
			}
			switch color[m] {
			case white:
				if dfs(m) {
					return true
				}
			case gray:
				// Extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == m {
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	if dfs(start) {
		return cycle
	}
	return nil
}
