// Package locking implements the dynamic-atomicity protocol family: a
// deferred-update (intentions-list) locking object with pluggable conflict
// guards, and a waits-for-graph deadlock detector.
//
// Conflict decisions are delegated to the tiered engine in
// internal/conflict; the guards here are thin adapters that pin one
// granularity of the spectrum the paper discusses:
//
//   - RWGuard — classical read/write two-phase locking, the coarsest
//     baseline.
//   - TableGuard — type-specific commutativity locking in the style of
//     [Schwarz & Spector 82] / [Korth 81]: a static conflict predicate over
//     invocations (argument-aware or name-only).
//   - ExactGuard — state-based dynamic atomicity: an operation is granted
//     exactly when every arrangement (every order of every subset) of the
//     active transactions' intentions, with the new call appended to the
//     requester's, replays the recorded results. This is what lets two
//     withdrawals run concurrently when the balance covers both (§5.1).
//   - EscrowGuard — a constant-time specialisation of the same idea for
//     the bank-account type.
//
// The engine itself (conflict.ForType) also satisfies Guard: it cascades
// name table → argument predicate → per-block summary → memoised exact
// search, granting exactly what ExactGuard grants at a fraction of the
// cost.
package locking

import (
	"weihl83/internal/conflict"
	"weihl83/internal/spec"
)

// Guard decides whether a new call may be granted. base is the committed
// state of the object, mine the requester's prior calls at the object (its
// intentions list), cand the candidate call (invocation plus the result it
// would return), and others the pending intentions of the other active
// transactions, one non-empty slice per transaction.
//
// Soundness contract: if Allowed returns true, then for every subset of the
// other transactions and every serialization order of that subset together
// with the requester (its intentions extended by cand), replaying from base
// must reproduce every recorded result. The object preserves this as an
// invariant, which makes every recorded history dynamic atomic.
//
// A false result with a nil error means the requester must wait (the
// normal conflict outcome). A non-nil error reports that the guard cannot
// decide at all — a misconfiguration such as a state-based guard over the
// wrong state type (conflict.ErrTypeMismatch) — and the invocation fails
// instead of waiting forever.
type Guard interface {
	Allowed(base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) (bool, error)
}

// RWGuard is classical two-phase locking: every operation is classified as
// a read or a write; a write conflicts with everything, a read conflicts
// with writes.
type RWGuard struct {
	// IsWrite classifies operation names.
	IsWrite func(op string) bool
}

var _ Guard = RWGuard{}

// Allowed implements Guard.
func (g RWGuard) Allowed(_ spec.State, _ []spec.Call, cand spec.Call, others [][]spec.Call) (bool, error) {
	return conflict.RWAllowed(g.IsWrite, cand, others), nil
}

// TableGuard grants a call when it commutes with every pending call of
// every other active transaction according to a static conflict predicate.
type TableGuard struct {
	// Conflicts reports whether two invocations may fail to commute.
	Conflicts func(p, q spec.Invocation) bool
}

var _ Guard = TableGuard{}

// Allowed implements Guard.
func (g TableGuard) Allowed(_ spec.State, _ []spec.Call, cand spec.Call, others [][]spec.Call) (bool, error) {
	return conflict.TableAllowed(g.Conflicts, cand, others), nil
}

// ExactGuard implements state-based dynamic atomicity by exhaustive
// arrangement checking (conflict.ExactSearch): starting from the committed
// base, every order of every subset of the active blocks (the requester's
// block has cand appended) must replay the recorded results. MaxBlocks and
// MaxStates bound the work, and exceeding a bound conservatively denies
// the call (the requester waits, which is always safe).
//
// ExactGuard runs the search on every query. The cascade engine
// (conflict.ForType) reaches the same decisions through its memoised exact
// tier; prefer it on contended objects.
type ExactGuard struct {
	// Spec is retained for construction-site symmetry with the other
	// guards; the search itself replays through the base state.
	Spec spec.SerialSpec
	// MaxBlocks caps the number of concurrent blocks considered exactly
	// (default conflict.DefaultMaxBlocks).
	MaxBlocks int
	// MaxStates caps the total number of explored (subset, state) pairs
	// (default conflict.DefaultMaxStates).
	MaxStates int
}

var _ Guard = ExactGuard{}

// Allowed implements Guard.
func (g ExactGuard) Allowed(base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) (bool, error) {
	return conflict.ExactSearch(base, mine, cand, others, g.MaxBlocks, g.MaxStates), nil
}

// EscrowGuard is the constant-time state-based guard for the bank-account
// type (§5.1), a thin adapter over conflict.AccountSummary used
// authoritatively (denials are final, not escalated).
//
// Applied to an object whose state is not an account, Allowed returns
// conflict.ErrTypeMismatch (and bumps the cc.conflict.type_mismatch
// counter) instead of silently denying forever — the historical behaviour
// masqueraded as a permanent conflict and livelocked the requester in a
// lock wait.
type EscrowGuard struct{}

var _ Guard = EscrowGuard{}

// Allowed implements Guard.
func (g EscrowGuard) Allowed(base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) (bool, error) {
	v, err := conflict.AccountSummary{}.Decide(base, mine, cand, others)
	if err != nil {
		return false, err
	}
	return v == conflict.Commutes, nil
}
