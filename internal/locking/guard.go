// Package locking implements the dynamic-atomicity protocol family: a
// deferred-update (intentions-list) locking object with pluggable conflict
// guards, and a waits-for-graph deadlock detector.
//
// Three guard granularities reproduce the spectrum the paper discusses:
//
//   - RWGuard — classical read/write two-phase locking, the coarsest
//     baseline.
//   - TableGuard — type-specific commutativity locking in the style of
//     [Schwarz & Spector 82] / [Korth 81]: a static conflict predicate over
//     invocations (argument-aware or name-only).
//   - ExactGuard — state-based dynamic atomicity: an operation is granted
//     exactly when every arrangement (every order of every subset) of the
//     active transactions' intentions, with the new call appended to the
//     requester's, replays the recorded results. This is what lets two
//     withdrawals run concurrently when the balance covers both (§5.1).
//   - EscrowGuard — a constant-time specialisation of the same idea for
//     the bank-account type.
package locking

import (
	"weihl83/internal/adts"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Guard decides whether a new call may be granted. base is the committed
// state of the object, mine the requester's prior calls at the object (its
// intentions list), cand the candidate call (invocation plus the result it
// would return), and others the pending intentions of the other active
// transactions, one non-empty slice per transaction.
//
// Soundness contract: if Allowed returns true, then for every subset of the
// other transactions and every serialization order of that subset together
// with the requester (its intentions extended by cand), replaying from base
// must reproduce every recorded result. The object preserves this as an
// invariant, which makes every recorded history dynamic atomic.
type Guard interface {
	Allowed(base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) bool
}

// RWGuard is classical two-phase locking: every operation is classified as
// a read or a write; a write conflicts with everything, a read conflicts
// with writes.
type RWGuard struct {
	// IsWrite classifies operation names.
	IsWrite func(op string) bool
}

var _ Guard = RWGuard{}

// Allowed implements Guard.
func (g RWGuard) Allowed(_ spec.State, _ []spec.Call, cand spec.Call, others [][]spec.Call) bool {
	candWrite := g.IsWrite(cand.Inv.Op)
	for _, block := range others {
		for _, q := range block {
			if candWrite || g.IsWrite(q.Inv.Op) {
				return false
			}
		}
	}
	return true
}

// TableGuard grants a call when it commutes with every pending call of
// every other active transaction according to a static conflict predicate.
type TableGuard struct {
	// Conflicts reports whether two invocations may fail to commute.
	Conflicts func(p, q spec.Invocation) bool
}

var _ Guard = TableGuard{}

// Allowed implements Guard.
func (g TableGuard) Allowed(_ spec.State, _ []spec.Call, cand spec.Call, others [][]spec.Call) bool {
	for _, block := range others {
		for _, q := range block {
			if g.Conflicts(cand.Inv, q.Inv) {
				return false
			}
		}
	}
	return true
}

// ExactGuard implements state-based dynamic atomicity by exhaustive
// arrangement checking with memoisation on (subset, state): starting from
// the committed base, every order of every subset of the active blocks
// (the requester's block has cand appended) must replay the recorded
// results. The search touches each (subset, reachable state, next block)
// triple once; MaxBlocks and MaxStates bound the work, and exceeding a
// bound conservatively denies the call (the requester waits, which is
// always safe).
type ExactGuard struct {
	// Spec evaluates replays. Required.
	Spec spec.SerialSpec
	// MaxBlocks caps the number of concurrent blocks considered exactly
	// (default 12).
	MaxBlocks int
	// MaxStates caps the total number of explored (subset, state) pairs
	// (default 1 << 14).
	MaxStates int
}

var _ Guard = ExactGuard{}

// Allowed implements Guard.
func (g ExactGuard) Allowed(base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) bool {
	maxBlocks := g.MaxBlocks
	if maxBlocks <= 0 {
		maxBlocks = 12
	}
	maxStates := g.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 14
	}
	myBlock := make([]spec.Call, 0, len(mine)+1)
	myBlock = append(myBlock, mine...)
	myBlock = append(myBlock, cand)
	blocks := make([][]spec.Call, 0, len(others)+1)
	blocks = append(blocks, myBlock)
	blocks = append(blocks, others...)
	if len(blocks) > maxBlocks {
		return false
	}

	// reach[mask] is the set of states reachable by applying the blocks of
	// mask in some order with some resolution of nondeterminism. The
	// requirement is that from every reachable state every absent block
	// replays feasibly; any failure refutes some arrangement.
	type layerState = map[string]spec.State
	reach := make(map[uint]layerState, 1<<len(blocks))
	reach[0] = layerState{base.Key(): base}
	visited := 0

	// Process masks in increasing popcount order so predecessors are
	// complete; a simple queue over masks works because adding block i to
	// mask always increases popcount.
	queue := []uint{0}
	seenMask := map[uint]bool{0: true}
	for len(queue) > 0 {
		mask := queue[0]
		queue = queue[1:]
		for i := 0; i < len(blocks); i++ {
			bit := uint(1) << i
			if mask&bit != 0 {
				continue
			}
			nextMask := mask | bit
			for _, st := range reach[mask] {
				visited++
				if visited > maxStates {
					return false
				}
				sts := spec.FeasibleFrom([]spec.State{st}, blocks[i])
				if sts == nil {
					// The arrangement reaching st followed by block i fails.
					return false
				}
				ls := reach[nextMask]
				if ls == nil {
					ls = make(layerState)
					reach[nextMask] = ls
				}
				for _, s := range sts {
					ls[s.Key()] = s
				}
			}
			if !seenMask[nextMask] {
				seenMask[nextMask] = true
				queue = append(queue, nextMask)
			}
		}
	}
	return true
}

// EscrowGuard is the constant-time state-based guard for the bank-account
// type (§5.1): withdrawals are granted when the committed balance covers
// the worst case over all orders and subsets of the other transactions'
// pending work, deposits are always safe against other mutators, and the
// balance observer requires the others' pending work to be invisible.
//
// The per-block reasoning: in any arrangement, another transaction's block
// lands entirely before or after the requester, and any subset of the
// others may commit. The worst case for a successful withdrawal therefore
// adds min(0, net_j) for every other block j; the worst case for an
// insufficient_funds outcome adds max(0, net_j). Observers (balance calls)
// and failed withdrawals recorded by others constrain mutators exactly as
// derived in DESIGN.md.
type EscrowGuard struct{}

var _ Guard = EscrowGuard{}

// blockFacts summarises one transaction's pending calls at an account.
type blockFacts struct {
	net               int64
	hasBalance        bool
	hasFailedWithdraw bool
}

func factsOf(calls []spec.Call) blockFacts {
	var f blockFacts
	for _, c := range calls {
		switch c.Inv.Op {
		case adts.OpDeposit:
			f.net += c.Inv.Arg.MustInt()
		case adts.OpWithdraw:
			if c.Result == value.Unit() {
				f.net -= c.Inv.Arg.MustInt()
			} else {
				f.hasFailedWithdraw = true
			}
		case adts.OpBalance:
			f.hasBalance = true
		}
	}
	return f
}

// Allowed implements Guard.
func (g EscrowGuard) Allowed(base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) bool {
	acct, ok := base.(adts.AccountState)
	if !ok {
		return false // EscrowGuard only understands accounts
	}
	bal := acct.Balance()
	my := factsOf(mine)
	var worst, best int64 // Σ min(0,net_j) and Σ max(0,net_j)
	othersHaveBalance := false
	othersHaveFailedWithdraw := false
	othersHaveMutation := false
	for _, block := range others {
		f := factsOf(block)
		if f.net < 0 {
			worst += f.net
		} else {
			best += f.net
		}
		if f.net != 0 {
			othersHaveMutation = true
		}
		othersHaveBalance = othersHaveBalance || f.hasBalance
		othersHaveFailedWithdraw = othersHaveFailedWithdraw || f.hasFailedWithdraw
	}

	switch cand.Inv.Op {
	case adts.OpBalance:
		// The observed value must be the same whether each other block
		// lands before or after the requester: every other net must be 0.
		return !othersHaveMutation
	case adts.OpDeposit:
		// Raising the funds can flip another's recorded insufficient_funds
		// and changes another's recorded balance.
		return !othersHaveBalance && !othersHaveFailedWithdraw
	case adts.OpWithdraw:
		n := cand.Inv.Arg.MustInt()
		if cand.Result == value.Unit() {
			// Lowering the funds changes recorded balances; it cannot flip
			// a recorded failure. Covered in the worst case?
			return !othersHaveBalance && bal+my.net+worst >= n
		}
		// insufficient_funds must hold even in the best case.
		return bal+my.net+best < n
	default:
		return false
	}
}
