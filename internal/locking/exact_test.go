package locking

import (
	"math/rand"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// bruteForceAllowed is the reference implementation of the exact guard's
// contract: every order of every subset of the blocks (the requester's
// block has cand appended) must replay the recorded results from base.
// It enumerates arrangements explicitly, with no memoization.
func bruteForceAllowed(s spec.SerialSpec, base spec.State, mine []spec.Call, cand spec.Call, others [][]spec.Call) bool {
	myBlock := append(append([]spec.Call(nil), mine...), cand)
	blocks := append([][]spec.Call{myBlock}, others...)
	n := len(blocks)
	used := make([]bool, n)

	var rec func(states []spec.State) bool
	rec = func(states []spec.State) bool {
		// Every prefix must itself be extendable feasibly; check each
		// unused block as the next element of the arrangement.
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			next := spec.FeasibleFrom(states, blocks[i])
			if next == nil {
				return false
			}
			used[i] = true
			ok := rec(next)
			used[i] = false
			if !ok {
				return false
			}
		}
		return true
	}
	return rec([]spec.State{base})
}

// TestExactGuardMatchesBruteForce cross-validates ExactGuard against the
// explicit enumeration on randomized account scenarios (deterministic
// spec, where the guard is exact rather than conservative).
func TestExactGuardMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := adts.AccountSpec{}
	g := ExactGuard{Spec: s}
	agreements, denials := 0, 0
	for trial := 0; trial < 400; trial++ {
		bal := int64(rng.Intn(12))
		base := spec.State(adts.AccountState(bal))

		randomCall := func(st spec.State) (spec.Call, spec.State) {
			var in spec.Invocation
			switch rng.Intn(3) {
			case 0:
				in = spec.Invocation{Op: adts.OpDeposit, Arg: value.Int(int64(rng.Intn(4)))}
			case 1:
				in = spec.Invocation{Op: adts.OpWithdraw, Arg: value.Int(int64(1 + rng.Intn(5)))}
			default:
				in = spec.Invocation{Op: adts.OpBalance}
			}
			out, err := spec.Apply(st, in)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			return spec.Call{Inv: in, Result: out.Result}, out.Next
		}

		// The requester's prior calls, replayed from base so the results
		// are self-consistent.
		var mine []spec.Call
		st := base
		for k := rng.Intn(2); k > 0; k-- {
			var c spec.Call
			c, st = randomCall(st)
			mine = append(mine, c)
		}
		cand, _ := randomCall(st)

		// Other blocks: each replayed from base independently (as the
		// invariant guarantees each was granted from a mutually feasible
		// position; random blocks may violate the invariant, in which case
		// both implementations must agree it fails).
		others := make([][]spec.Call, rng.Intn(3))
		for i := range others {
			ost := base
			var block []spec.Call
			for k := 1 + rng.Intn(2); k > 0; k-- {
				var c spec.Call
				c, ost = randomCall(ost)
				block = append(block, c)
			}
			others[i] = block
		}

		got := allow(t, g, base, mine, cand, others)
		want := bruteForceAllowed(s, base, mine, cand, others)
		if got != want {
			t.Fatalf("trial %d: guard=%t brute=%t\nbal=%d mine=%v cand=%v others=%v",
				trial, got, want, bal, mine, cand, others)
		}
		if got {
			agreements++
		} else {
			denials++
		}
	}
	if agreements == 0 || denials == 0 {
		t.Logf("coverage note: agreements=%d denials=%d", agreements, denials)
	}
}

// TestExactGuardMatchesBruteForceOnSets repeats the cross-validation on the
// integer set, whose conflicts are element-wise.
func TestExactGuardMatchesBruteForceOnSets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := adts.IntSetSpec{}
	g := ExactGuard{Spec: s}
	for trial := 0; trial < 300; trial++ {
		base := spec.State(IntSetState(t, rng))
		randomCall := func(st spec.State) (spec.Call, spec.State) {
			n := value.Int(int64(rng.Intn(3)))
			var in spec.Invocation
			switch rng.Intn(3) {
			case 0:
				in = spec.Invocation{Op: adts.OpInsert, Arg: n}
			case 1:
				in = spec.Invocation{Op: adts.OpDelete, Arg: n}
			default:
				in = spec.Invocation{Op: adts.OpMember, Arg: n}
			}
			out, err := spec.Apply(st, in)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			return spec.Call{Inv: in, Result: out.Result}, out.Next
		}
		var mine []spec.Call
		st := base
		for k := rng.Intn(2); k > 0; k-- {
			var c spec.Call
			c, st = randomCall(st)
			mine = append(mine, c)
		}
		cand, _ := randomCall(st)
		others := make([][]spec.Call, rng.Intn(3))
		for i := range others {
			ost := base
			var block []spec.Call
			for k := 1 + rng.Intn(2); k > 0; k-- {
				var c spec.Call
				c, ost = randomCall(ost)
				block = append(block, c)
			}
			others[i] = block
		}
		got := allow(t, g, base, mine, cand, others)
		want := bruteForceAllowed(s, base, mine, cand, others)
		if got != want {
			t.Fatalf("trial %d: guard=%t brute=%t\nbase=%s mine=%v cand=%v others=%v",
				trial, got, want, base.Key(), mine, cand, others)
		}
	}
}

// IntSetState builds a random reachable set state.
func IntSetState(t *testing.T, rng *rand.Rand) spec.State {
	t.Helper()
	st := spec.State(adts.IntSetSpec{}.Init())
	for k := rng.Intn(4); k > 0; k-- {
		out, err := spec.Apply(st, spec.Invocation{Op: adts.OpInsert, Arg: value.Int(int64(rng.Intn(3)))})
		if err != nil {
			t.Fatal(err)
		}
		st = out.Next
	}
	return st
}
