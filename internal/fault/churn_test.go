package fault_test

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"weihl83/internal/chaos"
	"weihl83/internal/tx"
)

// churnConfig is the elastic-cluster chaos configuration: every fault class
// from faultyConfig plus membership churn (fault.ClusterChurn drives the
// join/leave/move/rebalance cadence) and the migration fault windows. The
// rotating whole-network partition driver is replaced by the targeted
// mid-migration partitions of fault.MigratePartition.
func churnConfig(seed int64) chaos.Config {
	cfg := faultyConfig(tx.Dynamic, seed)
	cfg.PartitionProb = 0
	cfg.Churn = true
	cfg.ChurnProb = 0.9
	cfg.MigrateCrashProb = 0.05
	cfg.MigratePartitionProb = 0.2
	return cfg
}

// TestChaosChurn runs the elastic cluster under membership churn across the
// seed matrix — including seed 2, the historically flaky one — verifying
// the harness's oracles: the history is dynamic atomic, money is conserved,
// a log-only restart reproduces every committed state at its post-churn
// home, and every object ends singly-homed no matter which migration
// window a crash or partition hit.
func TestChaosChurn(t *testing.T) {
	var moves, churnFires int64
	for _, seed := range []int64{1, 2, 3, 4, 7} {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		rep, err := chaos.Run(ctx, churnConfig(seed))
		cancel()
		if err != nil {
			if rep != nil {
				t.Log(rep.Dump())
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.CheckErr != "" {
			t.Errorf("seed %d checker: %s", seed, rep.CheckErr)
		}
		if !rep.Conserved {
			t.Errorf("seed %d: money not conserved: %v", seed, rep.Balances)
		}
		moves += rep.Obs.Counter("dist.cluster.moves")
		churnFires += rep.Obs.Counter("fault.fire.cluster.churn")
	}
	if churnFires == 0 {
		t.Error("fault.ClusterChurn never fired across the seed matrix; churn not exercised")
	}
	if moves == 0 {
		t.Error("no shard migration committed across the seed matrix; elastic layer not exercised")
	}
}

// TestChaosChurnSoak re-runs the churn matrix many times when
// CHAOS_CHURN_SOAK names a run count (e.g. CHAOS_CHURN_SOAK=100); plain
// `go test` does a 2-round smoke. Each round cycles fresh seeds so the
// fault schedules differ.
func TestChaosChurnSoak(t *testing.T) {
	rounds := 2
	if s := os.Getenv("CHAOS_CHURN_SOAK"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_CHURN_SOAK=%q", s)
		}
		rounds = n
	}
	for i := 0; i < rounds; i++ {
		seed := int64(100 + i)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		rep, err := chaos.Run(ctx, churnConfig(seed))
		cancel()
		if err != nil {
			if rep != nil {
				t.Log(rep.Dump())
			}
			t.Fatalf("soak round %d/%d seed %d: %v", i+1, rounds, seed, err)
		}
	}
}
