// Package fault is a seeded, deterministic fault-injection subsystem. The
// paper treats failure as a first-class event — atomicity is exactly the
// property that survives aborts, crashes and restarts — so the layers that
// can fail (stable storage, the message network, the sites) expose named
// fault points and consult an Injector at each one.
//
// Determinism: whether the n-th hit of a fault point fires is a pure
// function of (seed, point, n). Concurrency may change how many times each
// point is reached in a given run, but it can never change the decision at
// a given (point, hit) pair, so a seed pins the fault schedule: re-running
// the same scenario with the same seed reproduces the same injected faults.
// The injector additionally records an activation trace for diagnostics.
//
// All methods are safe on a nil *Injector (they report "never fires"), so
// instrumented code needs no nil checks at fault points.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"weihl83/internal/obs"
)

// Observability: total and per-point activation counts, plus a trace event
// per firing (the tracer places each fault among the transaction events it
// perturbed).
var (
	obsFires = obs.Default.Counter("fault.fires")
	obsTrace = obs.Default.Tracer()
)

// Point names a fault point. The instrumented packages hit these points;
// which of them fire is configured per injector with Enable.
type Point string

// The named fault points wired through the system.
const (
	// DiskAppendFail: a stable-storage append fails cleanly (nothing is
	// written). Hit by recovery.Disk.Append.
	DiskAppendFail Point = "disk.append.fail"
	// DiskAppendTorn: a stable-storage append tears — a prefix of the
	// record's calls reaches the platter, the append reports failure, and
	// restart discards the torn record (checksum model). Hit by
	// recovery.Disk.Append for records carrying calls.
	DiskAppendTorn Point = "disk.append.torn"
	// NetRequestDrop: a request message is lost before delivery; the
	// caller times out and retransmits. Hit by dist.Network per attempt.
	NetRequestDrop Point = "net.request.drop"
	// NetRequestDup: a request message is delivered twice; the duplicate's
	// reply is discarded (the site's reply cache makes delivery
	// idempotent). Hit by dist.Network after a successful delivery.
	NetRequestDup Point = "net.request.dup"
	// NetReplyDrop: the reply message is lost; the handler has executed
	// but the caller times out and retransmits (answered from the reply
	// cache). Hit by dist.Network per attempt.
	NetReplyDrop Point = "net.reply.drop"
	// NetDelay: extra message latency (the rule's Delay), reordering
	// concurrent messages. Hit by dist.Network per attempt.
	NetDelay Point = "net.delay"
	// SiteCrashPrepare: the participant crashes after forcing its
	// intentions to the log but before its yes-vote reaches the
	// coordinator — the transaction is in doubt at this site. Hit by
	// dist.Site in the prepare handler.
	SiteCrashPrepare Point = "site.crash.prepare"
	// SiteCrashCommitBeforeLog: the participant crashes on receiving the
	// commit decision, before logging it — recovery must resolve the
	// in-doubt transaction against the coordinator's decision log. Hit by
	// dist.Site in the commit handler.
	SiteCrashCommitBeforeLog Point = "site.crash.commit.before-log"
	// SiteCrashCommitAfterLog: the participant crashes after logging the
	// commit record but before installing the intentions in volatile
	// state — restart redoes the installation from the log. Hit by
	// dist.Site in the commit handler.
	SiteCrashCommitAfterLog Point = "site.crash.commit.after-log"
	// CoordCrashBeforeLog: the coordinator crashes after every participant
	// voted yes but before forcing the decision to its own log — no
	// decision exists anywhere, so participants left in doubt resolve to
	// presumed abort once the coordinator recovers (or unanimously via
	// peers). Hit by dist.Coordinator in Decide.
	CoordCrashBeforeLog Point = "coord.crash.before-log"
	// CoordCrashAfterLog: the coordinator crashes after forcing the
	// decision to its log but before broadcasting it — participants stay
	// in doubt until the cooperative termination protocol reaches the
	// recovered coordinator's durable log or a peer that heard the
	// decision. Hit by dist.Coordinator in Decide.
	CoordCrashAfterLog Point = "coord.crash.after-log"
	// NetPartition: the network splits into groups that cannot exchange
	// messages for a deterministic window, then heals. Consulted by the
	// chaos harness's partition driver to open windows; dist.Network
	// refuses cross-group delivery while one is open.
	NetPartition Point = "net.partition"
	// DiskCheckpointTorn: a checkpoint record tears while being written —
	// the snapshot fails its checksum, compaction is abandoned, and
	// restart falls back to replaying the full log. Hit by
	// recovery.Disk.Checkpoint.
	DiskCheckpointTorn Point = "disk.checkpoint.torn"
	// SvcAcceptDrop: the transaction service drops an admitted request
	// before executing it — the connection is torn down with no response,
	// as if the accept queue overflowed or the proxy died. The client sees
	// a transport error and must treat it as retryable (the transaction
	// never ran). Hit by service.Server after admission, before Run.
	SvcAcceptDrop Point = "svc.accept.drop"
	// SvcResponseTorn: the service's JSON response is cut off after a
	// prefix and the connection closed — the transaction COMMITTED but the
	// client cannot parse the outcome. Retrying is safe for conservation
	// (the harness oracles tolerate duplicate transfers; totals are
	// preserved) but not exactly-once; this point exists to exercise that
	// distinction. Hit by service.Server when writing a response body.
	SvcResponseTorn Point = "svc.response.torn"
	// SvcDrainTimeout: graceful drain's grace period collapses to zero —
	// in-flight transactions are cancelled immediately instead of being
	// given the deadline to finish, as if the supervisor killed the drain.
	// Hit by service.Server.Drain.
	SvcDrainTimeout Point = "svc.drain.timeout"
	// MigrateCrashSource: the source site of a shard migration crashes
	// after forcing its migrate-out intentions (its yes-vote) to the log —
	// the migration is in doubt at the source and resolves through the
	// cooperative termination protocol. Hit by dist.Site in the migration
	// prepare handler.
	MigrateCrashSource Point = "migrate.crash.source"
	// MigrateCrashDest: the destination site of a shard migration crashes
	// after forcing its migrate-in intentions (the copied state baseline)
	// to the log — in doubt at the destination, resolved cooperatively.
	// Hit by dist.Site in the migration prepare handler.
	MigrateCrashDest Point = "migrate.crash.dest"
	// MigrateCrashCommit: a migration participant crashes on receiving the
	// commit decision, before logging and applying the placement change —
	// recovery resolves the in-doubt migration against the coordinator's
	// decision log and redoes the hosting change from the logged
	// intentions. Hit by dist.Site in the migration commit handler.
	MigrateCrashCommit Point = "migrate.crash.commit"
	// MigratePartition: the network partitions mid-migration, isolating
	// the migration's source or destination between the copy and the
	// commit. Consulted by the chaos harness's churn driver when a
	// migration starts.
	MigratePartition Point = "migrate.partition"
	// ClusterChurn: a membership-churn action (join, leave, rebalance, or
	// a targeted shard move) is taken against the elastic cluster while
	// the workload runs. Consulted by the chaos harness's churn driver on
	// its cadence.
	ClusterChurn Point = "cluster.churn"
	// DiskWriteTorn: a file-backed WAL write tears — only a prefix of the
	// frame's bytes reach the file before the write errors. The backend
	// truncates the file back to the pre-record offset so the live log
	// stays clean, and the caller sees a retryable write failure. Hit by
	// recovery.FileWAL's file layer per frame write.
	DiskWriteTorn Point = "disk.write.torn"
	// DiskFsyncFail: the fsync that forces a group-commit batch fails —
	// nothing in the batch may be acknowledged (a commit record the
	// client saw fail must not survive restart), so the backend truncates
	// the segment back to the pre-batch offset and fails every group. Hit
	// by recovery.FileWAL's file layer per fsync.
	DiskFsyncFail Point = "disk.fsync.fail"
	// ReplDeliverDrop: an asynchronous replica delivery attempt is lost
	// before its RPC leaves the origin — the queue worker's bounded-retry
	// loop redelivers it, and the follower's idempotent apply (keyed by
	// the delivery's activity id) absorbs any duplicate. Hit by the
	// replication queue worker per attempt.
	ReplDeliverDrop Point = "repl.deliver.drop"
	// ReplApplyCrash: the follower site crashes inside the replica apply
	// handler — either after forcing the delivery's intentions but before
	// its commit record (the delivery vanishes at restart and redelivery
	// re-logs it), or after the commit record (restart replays it and
	// redelivery deduplicates). Hit by dist.Site's replica apply handler
	// in both windows.
	ReplApplyCrash Point = "repl.apply.crash"
	// ReplPartition: the network partitions a replica group — followers
	// are cut off from the origin's delivery queues for a window, then
	// heal and catch up. Consulted by the chaos harness's replication
	// partition driver on its cadence.
	ReplPartition Point = "repl.partition"
)

// AllPoints returns every named fault point wired through the system, in
// declaration order. The fault-point registry test cross-checks this list
// against the declared constants and against the test suite, so a point
// cannot be added and silently never exercised.
func AllPoints() []Point {
	return []Point{
		DiskAppendFail,
		DiskAppendTorn,
		NetRequestDrop,
		NetRequestDup,
		NetReplyDrop,
		NetDelay,
		SiteCrashPrepare,
		SiteCrashCommitBeforeLog,
		SiteCrashCommitAfterLog,
		CoordCrashBeforeLog,
		CoordCrashAfterLog,
		NetPartition,
		DiskCheckpointTorn,
		SvcAcceptDrop,
		SvcResponseTorn,
		SvcDrainTimeout,
		MigrateCrashSource,
		MigrateCrashDest,
		MigrateCrashCommit,
		MigratePartition,
		ClusterChurn,
		DiskWriteTorn,
		DiskFsyncFail,
		ReplDeliverDrop,
		ReplApplyCrash,
		ReplPartition,
	}
}

// Rule configures when an enabled fault point fires.
type Rule struct {
	// Prob is the firing probability in [0, 1] per hit.
	Prob float64
	// Limit caps the total number of activations; 0 means unlimited.
	Limit int
	// Delay is the extra latency injected by delay-style points.
	Delay time.Duration
}

// Activation records one firing of a fault point.
type Activation struct {
	// Point that fired.
	Point Point
	// Hit is the 1-based per-point hit number at which it fired.
	Hit uint64
}

// ruleState is a Rule plus its per-point counters.
type ruleState struct {
	Rule
	hits  uint64
	fired int
}

// Injector decides, deterministically from its seed, whether each hit of a
// named fault point fires. The zero of *Injector (nil) never fires.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	rules map[Point]*ruleState
	trace []Activation
}

// New returns an injector with the given seed and no points enabled.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), rules: make(map[Point]*ruleState)}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return int64(in.seed)
}

// Enable arms point p under rule r (replacing any previous rule and
// resetting its counters).
func (in *Injector) Enable(p Point, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[p] = &ruleState{Rule: r}
}

// splitmix64 is the SplitMix64 finalizer: a bijective mixer whose output is
// uniform enough to threshold against a probability.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a fault-point name.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// decide is the pure decision function: does the hit-th hit of p fire under
// probability prob with seed?
func decide(seed uint64, p Point, hit uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	u := splitmix64(seed ^ fnv64(string(p)) ^ hit*0x9e3779b97f4a7c15)
	return float64(u>>11)/(1<<53) < prob
}

// hit registers one hit of p and reports whether it fires, recording the
// activation.
func (in *Injector) hit(p Point) (Rule, bool) {
	if in == nil {
		return Rule{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rs, ok := in.rules[p]
	if !ok {
		return Rule{}, false
	}
	rs.hits++
	if rs.Limit > 0 && rs.fired >= rs.Limit {
		return Rule{}, false
	}
	if !decide(in.seed, p, rs.hits, rs.Prob) {
		return Rule{}, false
	}
	rs.fired++
	in.trace = append(in.trace, Activation{Point: p, Hit: rs.hits})
	obsFires.Inc()
	obs.Default.Counter("fault.fire." + string(p)).Inc()
	if obsTrace.Enabled() {
		obsTrace.Record(obs.TraceEvent{Kind: obs.KindFault, Note: string(p)})
	}
	return rs.Rule, true
}

// Fires registers one hit of p and reports whether the fault fires.
func (in *Injector) Fires(p Point) bool {
	_, fired := in.hit(p)
	return fired
}

// Delay registers one hit of p and returns the rule's extra latency if the
// fault fires, zero otherwise.
func (in *Injector) Delay(p Point) time.Duration {
	r, fired := in.hit(p)
	if !fired {
		return 0
	}
	return r.Delay
}

// Schedule previews, without consuming hits, which of the first n hits of p
// would fire under its enabled rule (ignoring Limit): the deterministic
// fault schedule the seed pins for that point.
func (in *Injector) Schedule(p Point, n int) []bool {
	if in == nil {
		return make([]bool, n)
	}
	in.mu.Lock()
	var prob float64
	if rs, ok := in.rules[p]; ok {
		prob = rs.Prob
	}
	seed := in.seed
	in.mu.Unlock()
	out := make([]bool, n)
	for i := range out {
		out[i] = decide(seed, p, uint64(i+1), prob)
	}
	return out
}

// Trace returns a copy of the activation trace, in firing order.
func (in *Injector) Trace() []Activation {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Activation(nil), in.trace...)
}

// Stats returns hits and activations per enabled point.
func (in *Injector) Stats() map[Point][2]uint64 {
	out := make(map[Point][2]uint64)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for p, rs := range in.rules {
		out[p] = [2]uint64{rs.hits, uint64(rs.fired)}
	}
	return out
}

// Summary renders per-point hit/fire counts, for diagnostic dumps.
func (in *Injector) Summary() string {
	stats := in.Stats()
	points := make([]string, 0, len(stats))
	for p := range stats {
		points = append(points, string(p))
	}
	sort.Strings(points)
	var b strings.Builder
	fmt.Fprintf(&b, "injector seed=%d\n", in.Seed())
	for _, p := range points {
		s := stats[Point(p)]
		fmt.Fprintf(&b, "  %-30s hits=%-6d fired=%d\n", p, s[0], s[1])
	}
	return b.String()
}
