package fault

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// pointConsts parses fault.go and returns the declared Point constants as
// identifier -> value, in declaration order.
func pointConsts(t *testing.T) (names []string, values map[string]string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fault.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	values = make(map[string]string)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, s := range gd.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ident, ok := vs.Type.(*ast.Ident)
			if !ok || ident.Name != "Point" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Fatalf("Point const %s is not a string literal", name.Name)
				}
				names = append(names, name.Name)
				values[name.Name] = strings.Trim(lit.Value, `"`)
			}
		}
	}
	return names, values
}

// TestAllPointsMatchesDeclaredConstants: AllPoints() is exactly the set of
// Point constants declared in fault.go, in declaration order — adding a
// fault point without registering it (or vice versa) fails here.
func TestAllPointsMatchesDeclaredConstants(t *testing.T) {
	names, values := pointConsts(t)
	if len(names) == 0 {
		t.Fatal("no Point constants found in fault.go")
	}
	all := AllPoints()
	if len(all) != len(names) {
		t.Fatalf("AllPoints() has %d points, fault.go declares %d", len(all), len(names))
	}
	for i, name := range names {
		if string(all[i]) != values[name] {
			t.Errorf("AllPoints()[%d] = %q, want %s = %q (declaration order)", i, all[i], name, values[name])
		}
	}
}

// TestEveryPointExercisedBySomeTest: every named fault point is referenced
// by at least one test file somewhere in the repository (this file
// excepted), so no injectable hazard exists that the suite never arms.
func TestEveryPointExercisedBySomeTest(t *testing.T) {
	names, _ := pointConsts(t)
	root := filepath.Join("..", "..")
	referenced := make(map[string]bool)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") || filepath.Base(path) == "registry_test.go" {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, name := range names {
			if referenced[name] {
				continue
			}
			// Identifier use: either qualified (fault.X, weihl83.X) or bare
			// inside this package's own tests.
			if bytes.Contains(src, []byte(name)) {
				referenced[name] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !referenced[name] {
			t.Errorf("fault point %s is exercised by no test file", name)
		}
	}
}
