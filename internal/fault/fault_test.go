package fault

import (
	"testing"
	"time"
)

// TestSeedDeterminism: two injectors with the same seed and rules, hit in
// the same order, produce identical decisions and identical traces — the
// fault schedule is a function of the seed.
func TestSeedDeterminism(t *testing.T) {
	points := []Point{NetRequestDrop, NetReplyDrop, DiskAppendTorn, SiteCrashPrepare}
	build := func() *Injector {
		in := New(42)
		for _, p := range points {
			in.Enable(p, Rule{Prob: 0.3})
		}
		return in
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		p := points[i%len(points)]
		if a.Fires(p) != b.Fires(p) {
			t.Fatalf("decision diverged at hit %d of %s", i, p)
		}
	}
	ta, tb := a.Trace(), b.Trace()
	if len(ta) == 0 {
		t.Fatal("no activations at prob 0.3 over 500 hits")
	}
	if len(ta) != len(tb) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("traces differ at %d: %v vs %v", i, ta[i], tb[i])
		}
	}
}

// TestSeedsDiffer: different seeds give different schedules.
func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	a.Enable(NetRequestDrop, Rule{Prob: 0.5})
	b.Enable(NetRequestDrop, Rule{Prob: 0.5})
	same := true
	for i := 0; i < 200; i++ {
		if a.Fires(NetRequestDrop) != b.Fires(NetRequestDrop) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical 200-hit schedules")
	}
}

// TestScheduleMatchesFires: Schedule previews exactly the decisions Fires
// makes (no Limit in play).
func TestScheduleMatchesFires(t *testing.T) {
	in := New(7)
	in.Enable(DiskAppendFail, Rule{Prob: 0.25})
	want := in.Schedule(DiskAppendFail, 100)
	for i, w := range want {
		if got := in.Fires(DiskAppendFail); got != w {
			t.Fatalf("hit %d: Fires=%v, Schedule=%v", i+1, got, w)
		}
	}
}

// TestProbabilityEndpoints: prob 1 always fires, prob 0 and unknown points
// never fire.
func TestProbabilityEndpoints(t *testing.T) {
	in := New(3)
	in.Enable(NetDelay, Rule{Prob: 1, Delay: 5 * time.Millisecond})
	in.Enable(NetRequestDup, Rule{Prob: 0})
	for i := 0; i < 20; i++ {
		if d := in.Delay(NetDelay); d != 5*time.Millisecond {
			t.Fatalf("prob-1 delay point returned %v", d)
		}
		if in.Fires(NetRequestDup) {
			t.Fatal("prob-0 point fired")
		}
		if in.Fires(SiteCrashPrepare) {
			t.Fatal("un-enabled point fired")
		}
	}
}

// TestLimit: a Limit-1 rule fires exactly once however many hits follow.
func TestLimit(t *testing.T) {
	in := New(9)
	in.Enable(SiteCrashPrepare, Rule{Prob: 1, Limit: 1})
	fired := 0
	for i := 0; i < 50; i++ {
		if in.Fires(SiteCrashPrepare) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("limit-1 rule fired %d times", fired)
	}
	if tr := in.Trace(); len(tr) != 1 || tr[0] != (Activation{Point: SiteCrashPrepare, Hit: 1}) {
		t.Fatalf("trace = %v", in.Trace())
	}
}

// TestNilInjector: every method is a safe no-op on nil.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Fires(NetRequestDrop) {
		t.Error("nil injector fired")
	}
	if d := in.Delay(NetDelay); d != 0 {
		t.Errorf("nil injector delay %v", d)
	}
	if tr := in.Trace(); tr != nil {
		t.Errorf("nil injector trace %v", tr)
	}
	if s := in.Schedule(NetDelay, 3); len(s) != 3 || s[0] || s[1] || s[2] {
		t.Errorf("nil injector schedule %v", s)
	}
	if in.Seed() != 0 {
		t.Error("nil injector seed")
	}
	if len(in.Stats()) != 0 {
		t.Error("nil injector stats")
	}
}

// TestStatsAndSummary: counters track hits and activations.
func TestStatsAndSummary(t *testing.T) {
	in := New(11)
	in.Enable(NetRequestDrop, Rule{Prob: 1, Limit: 2})
	for i := 0; i < 5; i++ {
		in.Fires(NetRequestDrop)
	}
	s := in.Stats()[NetRequestDrop]
	if s[0] != 5 || s[1] != 2 {
		t.Fatalf("stats = %v, want hits=5 fired=2", s)
	}
	if sum := in.Summary(); sum == "" {
		t.Fatal("empty summary")
	}
}
