package fault_test

import (
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"weihl83/internal/chaos"
	"weihl83/internal/fault"
	"weihl83/internal/tx"
)

// faultyConfig is a chaos configuration with every fault class enabled at
// probabilities high enough to fire many times per run.
func faultyConfig(prop tx.Property, seed int64) chaos.Config {
	cfg := chaos.Config{
		Property: prop,
		Seed:     seed,
		Workers:  3,
		Txns:     3,
		TornProb: 0.05,
		FailProb: 0.05,
	}
	if prop == tx.Dynamic {
		cfg.DropProb = 0.05
		cfg.DupProb = 0.10
		cfg.ReplyDropProb = 0.05
		cfg.CrashPrepareProb = 0.03
		cfg.CrashCommitProb = 0.03
		cfg.CoordCrashProb = 0.03
		cfg.PartitionProb = 0.5
		cfg.CheckpointEvery = 2 * time.Millisecond
	}
	return cfg
}

// TestChaosUnderEachProperty runs the randomized workload with faults
// injected under all three local atomicity properties. The harness itself
// verifies the oracles: the recorded history satisfies the property's
// exact checker, money is conserved, and (hybrid) a log-only restart
// reproduces the committed balances.
func TestChaosUnderEachProperty(t *testing.T) {
	for _, prop := range []tx.Property{tx.Dynamic, tx.Static, tx.Hybrid} {
		prop := prop
		t.Run(prop.String(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			rep, err := chaos.Run(ctx, faultyConfig(prop, 7))
			if err != nil {
				if rep != nil {
					t.Log(rep.Dump())
				}
				t.Fatal(err)
			}
			if rep.Commits < int64(1+3*3) {
				t.Errorf("commits = %d, want at least the seed + 9 transfers", rep.Commits)
			}
			if rep.CheckErr != "" {
				t.Errorf("checker: %s", rep.CheckErr)
			}
			if !rep.Conserved {
				t.Errorf("money not conserved: %v", rep.Balances)
			}
			t.Log(rep.Dump())
		})
	}
}

// TestChaosDynamicSurvivesCrashes re-runs the dynamic cluster across
// several seeds so the crash windows actually fire: across the seeds at
// least one site crash must have been injected and recovered from.
func TestChaosDynamicSurvivesCrashes(t *testing.T) {
	var crashes int64
	for seed := int64(1); seed <= 4; seed++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		rep, err := chaos.Run(ctx, faultyConfig(tx.Dynamic, seed))
		cancel()
		if err != nil {
			if rep != nil {
				t.Log(rep.Dump())
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		crashes += rep.Crashes
	}
	if crashes == 0 {
		t.Error("no site crash fired across 4 seeds; crash windows not exercised")
	}
}

// TestChaosSeedReproducesFaultSchedule: determinism of the fault schedule.
// First structurally — two injectors with one seed preview identical
// decision sequences at every point, a third seed differs somewhere — and
// then end-to-end: two single-worker chaos runs with the same seed drive
// the system through the identical activation trace.
func TestChaosSeedReproducesFaultSchedule(t *testing.T) {
	points := []fault.Point{
		fault.NetRequestDrop, fault.NetRequestDup, fault.NetReplyDrop,
		fault.DiskAppendTorn, fault.SiteCrashPrepare,
	}
	a, b, c := fault.New(11), fault.New(11), fault.New(12)
	for _, in := range []*fault.Injector{a, b, c} {
		for _, p := range points {
			in.Enable(p, fault.Rule{Prob: 0.2})
		}
	}
	var differs bool
	for _, p := range points {
		sa, sb, sc := a.Schedule(p, 200), b.Schedule(p, 200), c.Schedule(p, 200)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("same seed diverged at %s hit %d", p, i)
			}
			if sa[i] != sc[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("seeds 11 and 12 produced identical schedules at every point")
	}

	// End-to-end: a sequential (single-worker, no crash/recovery races)
	// run's activation trace is a pure function of the seed.
	run := func() []fault.Activation {
		cfg := chaos.Config{
			Property:      tx.Dynamic,
			Seed:          21,
			Workers:       1,
			Txns:          4,
			DropProb:      0.15,
			DupProb:       0.15,
			ReplyDropProb: 0.10,
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rep, err := chaos.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Trace
	}
	t1, t2 := run(), run()
	if len(t1) == 0 {
		t.Fatal("no fault activations recorded; schedule not exercised")
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

// TestChaosHonoursWallClockBound: an expired context makes the run fail
// fast with the context error and still hand back a diagnostic report.
func TestChaosHonoursWallClockBound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := chaos.Run(ctx, faultyConfig(tx.Dynamic, 3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run under cancelled context = %v, want Canceled", err)
	}
	if rep == nil {
		t.Fatal("no diagnostic report on timeout")
	}
	if rep.Dump() == "" {
		t.Error("empty diagnostic dump")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v to notice the cancelled context", elapsed)
	}
}

// TestChaosSeed2Soak re-runs the historically flaky seed (seed 2 under
// dynamic atomicity: the expect=0 first-contact window, ROADMAP's old open
// item 1, fired in ~1-5% of runs there) many times to demonstrate the
// epoch handshake closed it. The full soak is expensive, so it runs only
// when CHAOS_SOAK names a run count (e.g. CHAOS_SOAK=500); plain `go test`
// does a 5-run smoke.
func TestChaosSeed2Soak(t *testing.T) {
	runs := 5
	if s := os.Getenv("CHAOS_SOAK"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SOAK=%q", s)
		}
		runs = n
	}
	for i := 0; i < runs; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		rep, err := chaos.Run(ctx, faultyConfig(tx.Dynamic, 2))
		cancel()
		if err != nil {
			if rep != nil {
				t.Log(rep.Dump())
			}
			t.Fatalf("soak run %d/%d: %v", i+1, runs, err)
		}
	}
}
