// Package paper catalogues every example event sequence in the paper
// together with the verdicts the paper assigns, and binds the objects those
// sequences use to their serial specifications. It is the shared source of
// truth for experiment E1: the core test suite asserts each verdict, and
// cmd/papertest prints the full table.
//
// Sequences the extended abstract elides (its text describes them but the
// displayed figure was omitted) are reconstructed from the prose and marked
// "(reconstructed)" in their section references.
package paper

import (
	"weihl83/internal/adts"
	"weihl83/internal/core"
	"weihl83/internal/histories"
)

// Verdict is a tri-state expected outcome.
type Verdict int

// Verdicts.
const (
	// Holds: the property must hold.
	Holds Verdict = iota + 1
	// Fails: the property must fail.
	Fails
	// NotApplicable: the check is skipped (e.g. static atomicity of a
	// history with no initiation events).
	NotApplicable
)

// String renders the verdict for tables.
func (v Verdict) String() string {
	switch v {
	case Holds:
		return "yes"
	case Fails:
		return "no"
	case NotApplicable:
		return "-"
	default:
		return "?"
	}
}

// Sequence is one catalogued example.
type Sequence struct {
	Name    string
	Section string
	Text    string

	WellFormed    Verdict
	Atomic        Verdict
	DynamicAtomic Verdict
	StaticAtomic  Verdict
	HybridAtomic  Verdict
}

// History parses the sequence's text.
func (s Sequence) History() histories.History { return histories.MustParse(s.Text) }

// NewChecker returns a checker with the catalogue's objects registered:
// x is the integer set (§2–§4), y the bank account (§5.1), q the FIFO
// queue (§5.1), and c the optimality-proof counter (§4.1).
func NewChecker() *core.Checker {
	c := core.NewChecker()
	c.Register("x", adts.IntSetSpec{})
	c.Register("y", adts.AccountSpec{})
	c.Register("q", adts.QueueSpec{})
	c.Register("c", adts.CounterSpec{})
	return c
}

// Sequences is the full catalogue.
var Sequences = []Sequence{
	{
		Name:    "S3-perm-example",
		Section: "§3",
		Text: `
<member(3),x,a>
<insert(3),x,b>
<ok,x,b>
<true,x,a>
<commit,x,b>
<delete(3),x,c>
<ok,x,c>
<commit,x,a>
<abort,x,c>
`,
		WellFormed:    Holds,
		Atomic:        Holds, // perm(h) ~ serial b then a
		DynamicAtomic: Fails, // a-b (also consistent with precedes) is infeasible
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S3-not-atomic",
		Section: "§3",
		Text: `
<member(2),x,a>
<true,x,a>
<commit,x,a>
`,
		WellFormed:    Holds,
		Atomic:        Fails, // x is initially empty
		DynamicAtomic: Fails,
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S4.1-atomic-not-dynamic",
		Section: "§4.1",
		Text: `
<member(3),x,a>
<insert(3),x,b>
<ok,x,b>
<false,x,a>
<member(3),x,c>
<commit,x,b>
<true,x,c>
<commit,x,a>
<commit,x,c>
`,
		WellFormed:    Holds,
		Atomic:        Holds, // serializable a-b-c
		DynamicAtomic: Fails, // precedes = {<b,c>}: b-a-c and b-c-a must also work
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S4.1-dynamic-atomic",
		Section: "§4.1",
		Text: `
<member(2),x,a>
<insert(3),x,b>
<ok,x,b>
<false,x,a>
<member(3),x,c>
<commit,x,b>
<true,x,c>
<commit,x,a>
<commit,x,c>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Holds, // serializable in a-b-c, b-a-c and b-c-a
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S4.2-atomic-not-static",
		Section: "§4.2.2",
		Text: `
<initiate(2),x,a>
<member(3),x,a>
<false,x,a>
<commit,x,a>
<initiate(1),x,b>
<insert(3),x,b>
<ok,x,b>
<commit,x,b>
`,
		WellFormed:    Holds,
		Atomic:        Holds, // serializable a-b
		DynamicAtomic: Holds, // precedes forces a-b, which works
		StaticAtomic:  Fails, // timestamp order is b-a
		HybridAtomic:  Fails,
	},
	{
		Name:    "S4.2-static-atomic",
		Section: "§4.2.2",
		Text: `
<initiate(2),x,a>
<insert(3),x,a>
<ok,x,a>
<commit,x,a>
<initiate(1),x,b>
<member(3),x,b>
<false,x,b>
<commit,x,b>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Fails, // precedes forces a-b, which is infeasible —
		// static admits what dynamic rejects (§4.2.3)
		StaticAtomic: Holds, // timestamp order b-a works
		HybridAtomic: Holds,
	},
	{
		Name:    "S4.3-hybrid-wellformed-example",
		Section: "§4.3.1",
		Text: `
<insert(3),x,a>
<ok,x,a>
<commit(2),x,a>
<initiate(1),x,r>
<member(3),x,r>
<false,x,r>
<commit,x,r>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Fails, // precedes forces a-r; member=false then contradicts
		StaticAtomic:  Fails, // a never initiates: no static timestamp
		HybridAtomic:  Holds, // timestamp order r(1)-a(2) works
	},
	{
		Name:    "S4.3-atomic-not-hybrid",
		Section: "§4.3.2 (reconstructed)",
		Text: `
<initiate(1),x,r>
<insert(3),x,a>
<ok,x,a>
<commit(2),x,a>
<member(3),x,r>
<true,x,r>
<commit,x,r>
`,
		WellFormed:    Holds,
		Atomic:        Holds, // serializable a-r
		DynamicAtomic: Holds, // precedes has <a,r>; a-r works — dynamic admits
		// what hybrid rejects (§4.3.3)
		StaticAtomic: Fails,
		HybridAtomic: Fails, // timestamp order r(1)-a(2) cannot explain member=true
	},
	{
		Name:    "S4.3-hybrid-atomic",
		Section: "§4.3.2 (reconstructed)",
		Text: `
<insert(3),x,a>
<ok,x,a>
<commit(1),x,a>
<initiate(2),x,r>
<member(3),x,r>
<true,x,r>
<commit,x,r>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Holds,
		StaticAtomic:  Fails,
		HybridAtomic:  Holds,
	},
	{
		Name:    "S5.1-concurrent-withdrawals",
		Section: "§5.1",
		Text: `
<deposit(10),y,a>
<ok,y,a>
<commit,y,a>
<withdraw(4),y,b>
<withdraw(3),y,c>
<ok,y,c>
<ok,y,b>
<commit,y,c>
<commit,y,b>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Holds, // serializable in a-b-c and a-c-b
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S5.1-withdraw-with-deposit",
		Section: "§5.1 (reconstructed)",
		Text: `
<deposit(10),y,a>
<ok,y,a>
<commit,y,a>
<withdraw(4),y,b>
<deposit(5),y,c>
<ok,y,c>
<ok,y,b>
<commit,y,c>
<commit,y,b>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Holds, // the deposit is not needed to cover the withdrawal
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S5.1-withdraw-needs-deposit",
		Section: "§5.1 (contrast case)",
		Text: `
<deposit(3),y,a>
<ok,y,a>
<commit,y,a>
<withdraw(4),y,b>
<deposit(5),y,c>
<ok,y,c>
<ok,y,b>
<commit,y,c>
<commit,y,b>
`,
		WellFormed:    Holds,
		Atomic:        Holds, // serializable a-c-b
		DynamicAtomic: Fails, // a-b-c fails: withdraw(4) from balance 3
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S5.1-queue",
		Section: "§5.1",
		Text: `
<enqueue(1),q,a>
<ok,q,a>
<enqueue(1),q,b>
<ok,q,b>
<enqueue(2),q,a>
<ok,q,a>
<enqueue(2),q,b>
<ok,q,b>
<commit,q,a>
<commit,q,b>
<dequeue,q,c>
<1,q,c>
<dequeue,q,c>
<2,q,c>
<dequeue,q,c>
<1,q,c>
<dequeue,q,c>
<2,q,c>
<commit,q,c>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Holds, // serializable in a-b-c and b-a-c
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S4.1-counter-serial",
		Section: "§4.1",
		Text: `
<increment,c,a1>
<1,c,a1>
<commit,c,a1>
<increment,c,a2>
<2,c,a2>
<commit,c,a2>
<increment,c,a3>
<3,c,a3>
<commit,c,a3>
`,
		WellFormed:    Holds,
		Atomic:        Holds,
		DynamicAtomic: Holds, // precedes totally orders a1-a2-a3
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S4.1-counter-wrong-order",
		Section: "§4.1 (contrast case)",
		Text: `
<increment,c,a1>
<2,c,a1>
<commit,c,a1>
<increment,c,a2>
<1,c,a2>
<commit,c,a2>
`,
		WellFormed:    Holds,
		Atomic:        Holds, // serializable a2-a1
		DynamicAtomic: Fails, // precedes forces a1-a2: results 2,1 infeasible
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
	{
		Name:    "S2-spec-violation",
		Section: "§2",
		Text: `
<member(2),x,a>
<true,x,a>
<commit,x,a>
`,
		WellFormed:    Holds,
		Atomic:        Fails, // "would probably not be in the specification of x"
		DynamicAtomic: Fails,
		StaticAtomic:  NotApplicable,
		HybridAtomic:  NotApplicable,
	},
}
