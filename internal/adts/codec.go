package adts

import (
	"encoding/json"
	"fmt"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// State codecs: every built-in spec implements spec.StateCodec so its
// objects can round-trip through a durable checkpoint snapshot. Encodings
// are JSON of the state's natural representation — small, stable, and
// independent of the in-memory layout.

var (
	_ spec.StateCodec = AccountSpec{}
	_ spec.StateCodec = CounterSpec{}
	_ spec.StateCodec = QueueSpec{}
	_ spec.StateCodec = SemiQueueSpec{}
	_ spec.StateCodec = IntSetSpec{}
	_ spec.StateCodec = RegisterSpec{}
	_ spec.StateCodec = DirectorySpec{}
	_ spec.StateCodec = SeatMapSpec{}
)

func codecErr(spec string, st spec.State) error {
	return fmt.Errorf("adts: %s codec: unexpected state %T", spec, st)
}

// EncodeState implements spec.StateCodec.
func (AccountSpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(AccountState)
	if !ok {
		return nil, codecErr("account", st)
	}
	return json.Marshal(int64(s))
}

// DecodeState implements spec.StateCodec.
func (AccountSpec) DecodeState(b []byte) (spec.State, error) {
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return nil, err
	}
	return AccountState(n), nil
}

// EncodeState implements spec.StateCodec.
func (CounterSpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(counterState)
	if !ok {
		return nil, codecErr("counter", st)
	}
	return json.Marshal(int64(s))
}

// DecodeState implements spec.StateCodec.
func (CounterSpec) DecodeState(b []byte) (spec.State, error) {
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return nil, err
	}
	return counterState(n), nil
}

// encodeInt64s marshals a []int64-backed state, normalising nil to [].
func encodeInt64s(s []int64) ([]byte, error) {
	if s == nil {
		s = []int64{}
	}
	return json.Marshal(s)
}

// EncodeState implements spec.StateCodec.
func (QueueSpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(queueState)
	if !ok {
		return nil, codecErr("queue", st)
	}
	return encodeInt64s(s)
}

// DecodeState implements spec.StateCodec.
func (QueueSpec) DecodeState(b []byte) (spec.State, error) {
	var s []int64
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	return queueState(s), nil
}

// EncodeState implements spec.StateCodec.
func (SemiQueueSpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(semiQueueState)
	if !ok {
		return nil, codecErr("semiqueue", st)
	}
	return encodeInt64s(s)
}

// DecodeState implements spec.StateCodec.
func (SemiQueueSpec) DecodeState(b []byte) (spec.State, error) {
	var s []int64
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	return semiQueueState(s), nil
}

// EncodeState implements spec.StateCodec.
func (IntSetSpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(intSetState)
	if !ok {
		return nil, codecErr("intset", st)
	}
	return encodeInt64s(s)
}

// DecodeState implements spec.StateCodec.
func (IntSetSpec) DecodeState(b []byte) (spec.State, error) {
	var s []int64
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	return intSetState(s), nil
}

// EncodeState implements spec.StateCodec.
func (RegisterSpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(registerState)
	if !ok {
		return nil, codecErr("register", st)
	}
	return json.Marshal(s.val)
}

// DecodeState implements spec.StateCodec.
func (RegisterSpec) DecodeState(b []byte) (spec.State, error) {
	var v value.Value
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return registerState{val: v}, nil
}

// wireBinding is binding's serialized form.
type wireBinding struct {
	K int64 `json:"k"`
	V int64 `json:"v"`
}

// EncodeState implements spec.StateCodec.
func (DirectorySpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(directoryState)
	if !ok {
		return nil, codecErr("directory", st)
	}
	out := make([]wireBinding, len(s))
	for i, b := range s {
		out[i] = wireBinding{K: b.k, V: b.v}
	}
	return json.Marshal(out)
}

// DecodeState implements spec.StateCodec.
func (DirectorySpec) DecodeState(b []byte) (spec.State, error) {
	var in []wireBinding
	if err := json.Unmarshal(b, &in); err != nil {
		return nil, err
	}
	if len(in) == 0 {
		return directoryState(nil), nil
	}
	out := make(directoryState, len(in))
	for i, w := range in {
		out[i] = binding{k: w.K, v: w.V}
	}
	return out, nil
}

// EncodeState implements spec.StateCodec.
func (SeatMapSpec) EncodeState(st spec.State) ([]byte, error) {
	s, ok := st.(seatMapState)
	if !ok {
		return nil, codecErr("seatmap", st)
	}
	taken := s.taken
	if taken == nil {
		taken = []bool{}
	}
	return json.Marshal(taken)
}

// DecodeState implements spec.StateCodec.
func (s SeatMapSpec) DecodeState(b []byte) (spec.State, error) {
	var taken []bool
	if err := json.Unmarshal(b, &taken); err != nil {
		return nil, err
	}
	if len(taken) != s.Seats {
		return nil, fmt.Errorf("adts: seatmap codec: snapshot has %d seats, spec has %d", len(taken), s.Seats)
	}
	return seatMapState{taken: taken}, nil
}
