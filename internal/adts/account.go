package adts

import (
	"strconv"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Bank-account operation names and results.
const (
	OpDeposit  = "deposit"  // deposit(n) -> ok
	OpWithdraw = "withdraw" // withdraw(n) -> ok | insufficient_funds
	OpBalance  = "balance"  // balance -> int
)

// InsufficientFunds is the abnormal termination of withdraw described in
// §5.1: the account balance is too small to cover the request.
var InsufficientFunds = value.Str("insufficient_funds")

// AccountSpec is the bank-account object of §5.1: initial balance zero,
// with operations to deposit a sum, withdraw a sum (terminating normally
// with ok or abnormally with insufficient_funds), and examine the balance.
type AccountSpec struct{}

var _ spec.SerialSpec = AccountSpec{}

// Name implements spec.SerialSpec.
func (AccountSpec) Name() string { return "account" }

// Init implements spec.SerialSpec.
func (AccountSpec) Init() spec.State { return AccountState(0) }

// AccountState is the account balance. It is exported so that the
// escrow-style state-based lock guard (internal/locking) can read the
// committed balance when deciding whether concurrent withdrawals are
// covered.
type AccountState int64

var _ spec.State = AccountState(0)

// Key implements spec.State.
func (s AccountState) Key() string { return strconv.FormatInt(int64(s), 10) }

// Balance returns the balance as an integer.
func (s AccountState) Balance() int64 { return int64(s) }

// Step implements spec.State.
func (s AccountState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpDeposit:
		n, okArg := in.Arg.AsInt()
		if !okArg || n < 0 {
			return nil
		}
		return one(ok, s+AccountState(n))
	case OpWithdraw:
		n, okArg := in.Arg.AsInt()
		if !okArg || n < 0 {
			return nil
		}
		if int64(n) > int64(s) {
			return one(InsufficientFunds, s)
		}
		return one(ok, s-AccountState(n))
	case OpBalance:
		if !in.Arg.IsNil() {
			return nil
		}
		return one(value.Int(int64(s)), s)
	default:
		return nil
	}
}

// AccountConflicts is the conflict relation the paper ascribes to the
// locking protocols in §5.1: two deposits commute; two withdrawals do not
// (if the balance covers either but not both, the results depend on order);
// a deposit does not commute with a withdrawal (the deposit may be what
// covers it); balance conflicts with both mutators.
func AccountConflicts(p, q spec.Invocation) bool {
	pw := AccountIsWrite(p.Op)
	qw := AccountIsWrite(q.Op)
	if !pw && !qw {
		return false // balance/balance
	}
	if p.Op == OpDeposit && q.Op == OpDeposit {
		return false
	}
	return true
}

// AccountConflictsNameOnly coincides with AccountConflicts: the account's
// conflict structure is determined by operation names alone (the amounts
// never help without looking at the state).
func AccountConflictsNameOnly(p, q spec.Invocation) bool { return AccountConflicts(p, q) }

// AccountIsWrite classifies account operations for read/write locking.
func AccountIsWrite(op string) bool { return op == OpDeposit || op == OpWithdraw }

// AccountInvert compensates mutations for update-in-place recovery: a
// deposit is undone by a withdrawal of the same amount and a successful
// withdrawal by a deposit; failed withdrawals and balance reads change
// nothing.
func AccountInvert(_ spec.State, in spec.Invocation, res value.Value) []spec.Invocation {
	n, hasArg := in.Arg.AsInt()
	if !hasArg {
		return nil
	}
	switch in.Op {
	case OpDeposit:
		return []spec.Invocation{inv(OpWithdraw, value.Int(n))}
	case OpWithdraw:
		if res != ok {
			return nil // insufficient_funds: no state change
		}
		return []spec.Invocation{inv(OpDeposit, value.Int(n))}
	default:
		return nil
	}
}

// Account returns the full Type bundle for the bank account.
func Account() Type {
	return Type{
		Spec:              AccountSpec{},
		Conflicts:         AccountConflicts,
		ConflictsNameOnly: AccountConflictsNameOnly,
		IsWrite:           AccountIsWrite,
		Invert:            AccountInvert,
	}
}
