package adts

import (
	"testing"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func TestRegisterSerialBehaviour(t *testing.T) {
	calls, st := mustReplay(t, RegisterSpec{}, []spec.Invocation{
		inv(OpRegRead, value.Nil()),
		inv(OpRegWrite, value.Int(7)),
		inv(OpRegRead, value.Nil()),
		inv(OpRegWrite, value.Str("s")),
		inv(OpRegRead, value.Nil()),
	})
	want := []value.Value{
		value.Int(0),
		value.Unit(),
		value.Int(7),
		value.Unit(),
		value.Str("s"),
	}
	for i, w := range want {
		if calls[i].Result != w {
			t.Errorf("call %d: %v, want %v", i, calls[i].Result, w)
		}
	}
	if st.Key() != `"s"` {
		t.Errorf("final state %s", st.Key())
	}
}

func TestRegisterRejectsBadArgs(t *testing.T) {
	st := RegisterSpec{}.Init()
	if outs := st.Step(inv(OpRegRead, value.Int(1))); outs != nil {
		t.Error("read with arg accepted")
	}
	if outs := st.Step(inv(OpRegWrite, value.Nil())); outs != nil {
		t.Error("write of nil accepted")
	}
	if outs := st.Step(inv("bogus", value.Nil())); outs != nil {
		t.Error("bogus op accepted")
	}
}

func TestRegisterConflicts(t *testing.T) {
	r := inv(OpRegRead, value.Nil())
	w7 := inv(OpRegWrite, value.Int(7))
	w7b := inv(OpRegWrite, value.Int(7))
	w8 := inv(OpRegWrite, value.Int(8))
	if RegisterConflicts(r, r) {
		t.Error("read/read conflicts")
	}
	if !RegisterConflicts(r, w7) || !RegisterConflicts(w7, r) {
		t.Error("read/write must conflict")
	}
	if !RegisterConflicts(w7, w8) {
		t.Error("writes of different values must conflict")
	}
	if RegisterConflicts(w7, w7b) {
		t.Error("identical blind writes commute")
	}
	// Name-only is the classical table: write conflicts with everything.
	if !RegisterConflictsNameOnly(w7, w7b) {
		t.Error("name-only write/write must conflict")
	}
	if RegisterConflictsNameOnly(r, r) {
		t.Error("name-only read/read must not conflict")
	}
}

func TestRegisterInvert(t *testing.T) {
	st := RegisterSpec{}.Init()
	undo := RegisterInvert(st, inv(OpRegWrite, value.Int(9)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpRegWrite || undo[0].Arg != value.Int(0) {
		t.Errorf("invert write = %v", undo)
	}
	if undo := RegisterInvert(st, inv(OpRegRead, value.Nil()), value.Int(0)); undo != nil {
		t.Errorf("invert read = %v", undo)
	}
}

func TestRegisterBundle(t *testing.T) {
	ty := Register()
	if ty.Spec.Name() != "register" {
		t.Errorf("bundle name %q", ty.Spec.Name())
	}
	if !ty.IsWrite(OpRegWrite) || ty.IsWrite(OpRegRead) {
		t.Error("IsWrite misclassifies")
	}
}
