package adts

import (
	"testing"
	"testing/quick"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func TestAccountSerialBehaviour(t *testing.T) {
	calls, st := mustReplay(t, AccountSpec{}, []spec.Invocation{
		inv(OpBalance, value.Nil()),
		inv(OpDeposit, value.Int(10)),
		inv(OpWithdraw, value.Int(4)),
		inv(OpWithdraw, value.Int(7)), // only 6 left
		inv(OpBalance, value.Nil()),
		inv(OpWithdraw, value.Int(6)),
		inv(OpBalance, value.Nil()),
	})
	want := []value.Value{
		value.Int(0),
		value.Unit(),
		value.Unit(),
		InsufficientFunds,
		value.Int(6),
		value.Unit(),
		value.Int(0),
	}
	for i, w := range want {
		if calls[i].Result != w {
			t.Errorf("call %d (%v): result %v, want %v", i, calls[i].Inv, calls[i].Result, w)
		}
	}
	if st.(AccountState).Balance() != 0 {
		t.Errorf("final balance %d, want 0", st.(AccountState).Balance())
	}
}

func TestAccountRejectsBadArgs(t *testing.T) {
	st := AccountSpec{}.Init()
	bad := []spec.Invocation{
		inv(OpDeposit, value.Nil()),
		inv(OpDeposit, value.Int(-5)),
		inv(OpWithdraw, value.Int(-1)),
		inv(OpWithdraw, value.Str("x")),
		inv(OpBalance, value.Int(1)),
		inv("bogus", value.Nil()),
	}
	for _, in := range bad {
		if outs := st.Step(in); outs != nil {
			t.Errorf("Step(%v) = %v, want nil", in, outs)
		}
	}
}

// TestAccountConflictsPaperTable encodes §5.1's analysis verbatim: two
// deposits commute; two withdrawals do not; a deposit does not commute with
// a withdrawal.
func TestAccountConflictsPaperTable(t *testing.T) {
	dep := inv(OpDeposit, value.Int(10))
	wdr := inv(OpWithdraw, value.Int(4))
	bal := inv(OpBalance, value.Nil())
	tests := []struct {
		p, q spec.Invocation
		want bool
	}{
		{dep, dep, false},
		{wdr, wdr, true},
		{dep, wdr, true},
		{wdr, dep, true},
		{bal, dep, true},
		{bal, wdr, true},
		{bal, bal, false},
	}
	for _, tt := range tests {
		if got := AccountConflicts(tt.p, tt.q); got != tt.want {
			t.Errorf("Conflicts(%s,%s) = %t, want %t", tt.p.Op, tt.q.Op, got, tt.want)
		}
		if got := AccountConflictsNameOnly(tt.p, tt.q); got != tt.want {
			t.Errorf("ConflictsNameOnly(%s,%s) = %t, want %t", tt.p.Op, tt.q.Op, got, tt.want)
		}
	}
}

// TestAccountWithdrawNonCommutativityWitness demonstrates the paper's two
// §5.1 scenarios: a balance large enough for either withdrawal but not
// both, and a deposit that is needed to cover a withdrawal.
func TestAccountWithdrawNonCommutativityWitness(t *testing.T) {
	// Balance 5; withdraw(4) and withdraw(3): order determines which fails.
	st := spec.State(AccountState(5))
	w4 := inv(OpWithdraw, value.Int(4))
	w3 := inv(OpWithdraw, value.Int(3))
	if commutesFrom(st, w4, w3) {
		t.Error("withdraw(4)/withdraw(3) commute from balance 5; they must not")
	}
	// Balance 3; deposit(1) and withdraw(4): deposit first covers it.
	st = AccountState(3)
	d1 := inv(OpDeposit, value.Int(1))
	if commutesFrom(st, d1, w4) {
		t.Error("deposit(1)/withdraw(4) commute from balance 3; they must not")
	}
	// From a large balance both withdrawals succeed in either order — the
	// data-dependence the state-based guard exploits.
	st = AccountState(100)
	if !commutesFrom(st, w4, w3) {
		t.Error("withdrawals fail to commute from balance 100")
	}
}

func TestAccountInvert(t *testing.T) {
	st := AccountState(10)
	// Deposit compensated by withdraw.
	undo := AccountInvert(st, inv(OpDeposit, value.Int(5)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpWithdraw || undo[0].Arg != value.Int(5) {
		t.Errorf("invert deposit = %v", undo)
	}
	// Successful withdraw compensated by deposit.
	undo = AccountInvert(st, inv(OpWithdraw, value.Int(5)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpDeposit {
		t.Errorf("invert withdraw = %v", undo)
	}
	// Failed withdraw: nothing to undo.
	if undo := AccountInvert(st, inv(OpWithdraw, value.Int(50)), InsufficientFunds); undo != nil {
		t.Errorf("invert failed withdraw = %v", undo)
	}
	// Balance: nothing to undo.
	if undo := AccountInvert(st, inv(OpBalance, value.Nil()), value.Int(10)); undo != nil {
		t.Errorf("invert balance = %v", undo)
	}
}

func TestAccountInvertRoundTrip(t *testing.T) {
	f := func(bal uint16, amt uint8, depositOp bool) bool {
		st := spec.State(AccountState(int64(bal)))
		var in spec.Invocation
		if depositOp {
			in = inv(OpDeposit, value.Int(int64(amt)))
		} else {
			in = inv(OpWithdraw, value.Int(int64(amt)))
		}
		out, err := spec.Apply(st, in)
		if err != nil {
			return false
		}
		cur := out.Next
		for _, u := range AccountInvert(st, in, out.Result) {
			o, err := spec.Apply(cur, u)
			if err != nil {
				return false
			}
			cur = o.Next
		}
		return cur.Key() == st.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccountTypeBundle(t *testing.T) {
	ty := Account()
	if ty.Spec.Name() != "account" {
		t.Errorf("bundle spec name %q", ty.Spec.Name())
	}
	if !ty.IsWrite(OpDeposit) || !ty.IsWrite(OpWithdraw) || ty.IsWrite(OpBalance) {
		t.Error("IsWrite misclassifies")
	}
}
