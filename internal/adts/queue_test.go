package adts

import (
	"testing"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func TestQueueSerialBehaviour(t *testing.T) {
	calls, st := mustReplay(t, QueueSpec{}, []spec.Invocation{
		inv(OpDequeue, value.Nil()), // empty
		inv(OpEnqueue, value.Int(1)),
		inv(OpEnqueue, value.Int(2)),
		inv(OpDequeue, value.Nil()),
		inv(OpEnqueue, value.Int(3)),
		inv(OpDequeue, value.Nil()),
		inv(OpDequeue, value.Nil()),
		inv(OpDequeue, value.Nil()), // empty again
	})
	want := []value.Value{
		EmptyQueue,
		value.Unit(),
		value.Unit(),
		value.Int(1),
		value.Unit(),
		value.Int(2),
		value.Int(3),
		EmptyQueue,
	}
	for i, w := range want {
		if calls[i].Result != w {
			t.Errorf("call %d (%v): result %v, want %v", i, calls[i].Inv, calls[i].Result, w)
		}
	}
	if st.Key() != "[]" {
		t.Errorf("final state %s, want []", st.Key())
	}
}

func TestQueueRejectsBadArgs(t *testing.T) {
	st := QueueSpec{}.Init()
	bad := []spec.Invocation{
		inv(OpEnqueue, value.Nil()),
		inv(OpDequeue, value.Int(1)),
		inv("bogus", value.Nil()),
	}
	for _, in := range bad {
		if outs := st.Step(in); outs != nil {
			t.Errorf("Step(%v) = %v, want nil", in, outs)
		}
	}
}

// TestQueueConflictsPaperObservation: "an operation to enqueue the integer
// 1 does not commute with an operation to enqueue the integer 2" (§5.1).
func TestQueueConflictsPaperObservation(t *testing.T) {
	e1 := inv(OpEnqueue, value.Int(1))
	e2 := inv(OpEnqueue, value.Int(2))
	dq := inv(OpDequeue, value.Nil())
	if !QueueConflicts(e1, e2) {
		t.Error("enqueue(1)/enqueue(2) reported commuting")
	}
	if QueueConflicts(e1, e1) {
		t.Error("enqueue(1)/enqueue(1) reported conflicting (identical enqueues commute)")
	}
	if !QueueConflicts(e1, dq) || !QueueConflicts(dq, dq) {
		t.Error("dequeue must conflict with everything")
	}
	// Name-only table conflicts everywhere.
	if !QueueConflictsNameOnly(e1, e1) {
		t.Error("name-only table must be conservative for enqueue/enqueue")
	}
	// Semantic witnesses.
	st := QueueSpec{}.Init()
	if commutesFrom(st, e1, e2) {
		t.Error("enqueue(1)/enqueue(2) actually commute; table and semantics disagree")
	}
	if !commutesFrom(st, e1, e1) {
		t.Error("identical enqueues fail to commute")
	}
}

func TestQueueIsWrite(t *testing.T) {
	if !QueueIsWrite(OpEnqueue) || !QueueIsWrite(OpDequeue) {
		t.Error("queue ops must be writes")
	}
}

func TestQueueTypeBundleHasNoInverter(t *testing.T) {
	if Queue().Invert != nil {
		t.Error("queue must not advertise update-in-place recovery")
	}
}

func TestQueueStatePersistence(t *testing.T) {
	st := QueueSpec{}.Init()
	out, err := spec.Apply(st, inv(OpEnqueue, value.Int(7)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Key() != "[]" || out.Next.Key() != "[7]" {
		t.Errorf("persistence violated: %s -> %s", st.Key(), out.Next.Key())
	}
}
