// Package adts is the library of atomic abstract data types used throughout
// the reproduction: the paper's integer set (§2), counter (§4.1 optimality
// proof), bank account (§5.1), and FIFO queue (§5.1), plus a read/write
// register (the classical baseline the paper generalizes), a directory, and
// a seat map for the reservation example.
//
// Each type provides:
//
//   - a serial specification (spec.SerialSpec) giving its acceptable serial
//     behaviour, including nondeterministic operations where useful;
//   - type-specific commutativity information at two granularities: an
//     argument-aware conflict predicate (à la Schwarz & Spector) and an
//     operation-name-only conflict table (the coarser classical baseline);
//   - a read/write classification (the coarsest baseline: ordinary 2PL);
//   - an inverter producing compensating invocations, used by the
//     update-in-place undo-log recovery variant.
package adts

import (
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Inverter returns the compensating invocations that undo inv (which was
// executed in state pre and returned res). The empty slice means the
// operation needs no compensation (it did not change the state).
type Inverter func(pre spec.State, inv spec.Invocation, res value.Value) []spec.Invocation

// Type bundles everything the protocols need to know about an abstract data
// type: its serial specification and its commutativity structure.
type Type struct {
	// Spec is the type's serial specification.
	Spec spec.SerialSpec
	// Conflicts is the argument-aware commutativity-based conflict
	// predicate: it reports whether two invocations fail to commute for
	// some reachable state, consulting operation arguments.
	Conflicts func(p, q spec.Invocation) bool
	// ConflictsNameOnly is the coarser predicate that may consult only
	// operation names.
	ConflictsNameOnly func(p, q spec.Invocation) bool
	// IsWrite classifies operations for read/write two-phase locking.
	IsWrite func(op string) bool
	// Invert produces compensating invocations for the undo-log recovery
	// variant. Nil when the type does not support update-in-place recovery.
	Invert Inverter
}

// ok is the unit result every successful mutator returns.
var ok = value.Unit()

// inv is shorthand for building invocations inside the ADT implementations.
func inv(op string, arg value.Value) spec.Invocation {
	return spec.Invocation{Op: op, Arg: arg}
}

// one wraps a single deterministic outcome.
func one(res value.Value, next spec.State) []spec.Outcome {
	return []spec.Outcome{{Result: res, Next: next}}
}
