package adts

import (
	"sort"
	"strconv"
	"strings"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// SemiQueue operation names reuse OpEnqueue/OpDequeue from the FIFO queue.

// SemiQueueSpec is the *semiqueue* of [Weihl & Liskov 83], which the
// paper's introduction cites as the motivating example for supporting
// nondeterministic operations: like a queue, but dequeue may return ANY
// element currently in the container, not necessarily the oldest.
//
// The weaker (nondeterministic) specification buys concurrency that no
// implementation of the FIFO queue can offer: two dequeues commute (either
// may take either element), and enqueues commute regardless of their
// values, whereas FIFO enqueues of different values never do. This is the
// paper's §1 point that "non-determinism may be needed to achieve a
// reasonable level of concurrency among actions".
type SemiQueueSpec struct{}

var _ spec.SerialSpec = SemiQueueSpec{}

// Name implements spec.SerialSpec.
func (SemiQueueSpec) Name() string { return "semiqueue" }

// Init implements spec.SerialSpec.
func (SemiQueueSpec) Init() spec.State { return semiQueueState(nil) }

// semiQueueState is the multiset of queued elements, kept sorted.
// Persistent: Step copies.
type semiQueueState []int64

var _ spec.State = semiQueueState(nil)

// Key implements spec.State.
func (s semiQueueState) Key() string {
	parts := make([]string, len(s))
	for i, n := range s {
		parts[i] = strconv.FormatInt(n, 10)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Step implements spec.State.
func (s semiQueueState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpEnqueue:
		n, okArg := in.Arg.AsInt()
		if !okArg {
			return nil
		}
		i := sort.Search(len(s), func(i int) bool { return s[i] >= n })
		next := make(semiQueueState, 0, len(s)+1)
		next = append(next, s[:i]...)
		next = append(next, n)
		next = append(next, s[i:]...)
		return one(ok, next)
	case OpDequeue:
		if !in.Arg.IsNil() {
			return nil
		}
		if len(s) == 0 {
			return one(EmptyQueue, s)
		}
		outs := make([]spec.Outcome, 0, len(s))
		for i := range s {
			if i > 0 && s[i] == s[i-1] {
				continue // duplicate elements yield identical outcomes
			}
			next := make(semiQueueState, 0, len(s)-1)
			next = append(next, s[:i]...)
			next = append(next, s[i+1:]...)
			outs = append(outs, spec.Outcome{Result: value.Int(s[i]), Next: next})
		}
		return outs
	default:
		return nil
	}
}

// SemiQueueConflicts: enqueues always commute (the container is unordered
// — unlike the FIFO queue, where enqueues of different values conflict).
// Dequeues are only *state-dependently* concurrent: two dequeues of
// distinct available elements commute, but two dequeues racing for the
// last element do not, so the static table must conservatively conflict
// them; the exact (state-based) guard recovers that concurrency by
// choosing, among dequeue's nondeterministic outcomes, an element no
// uncommitted transaction has taken.
func SemiQueueConflicts(p, q spec.Invocation) bool {
	if p.Op == OpEnqueue && q.Op == OpEnqueue {
		return false
	}
	return true
}

// SemiQueueConflictsNameOnly coincides with the argument-aware table: the
// semiqueue's conflict structure never depends on arguments.
func SemiQueueConflictsNameOnly(p, q spec.Invocation) bool { return SemiQueueConflicts(p, q) }

// SemiQueueIsWrite classifies semiqueue operations: both mutate.
func SemiQueueIsWrite(string) bool { return true }

// SemiQueue returns the full Type bundle. There is no inverter: a dequeue
// taken by compensation could have been observed, so the semiqueue uses
// intentions-list recovery.
func SemiQueue() Type {
	return Type{
		Spec:              SemiQueueSpec{},
		Conflicts:         SemiQueueConflicts,
		ConflictsNameOnly: SemiQueueConflictsNameOnly,
		IsWrite:           SemiQueueIsWrite,
		Invert:            nil,
	}
}
