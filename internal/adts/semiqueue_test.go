package adts

import (
	"testing"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func TestSemiQueueSerialBehaviour(t *testing.T) {
	s := SemiQueueSpec{}
	// Deterministic path: single elements.
	calls, st := mustReplay(t, s, []spec.Invocation{
		inv(OpDequeue, value.Nil()), // empty
		inv(OpEnqueue, value.Int(5)),
		inv(OpDequeue, value.Nil()),
	})
	if calls[0].Result != EmptyQueue {
		t.Errorf("dequeue on empty = %v", calls[0].Result)
	}
	if calls[2].Result != value.Int(5) {
		t.Errorf("dequeue = %v, want 5", calls[2].Result)
	}
	if st.Key() != "<>" {
		t.Errorf("final state %s", st.Key())
	}
}

func TestSemiQueueDequeueNondeterminism(t *testing.T) {
	s := SemiQueueSpec{}
	_, st := mustReplay(t, s, []spec.Invocation{
		inv(OpEnqueue, value.Int(1)),
		inv(OpEnqueue, value.Int(2)),
		inv(OpEnqueue, value.Int(2)), // duplicate
	})
	outs := st.Step(inv(OpDequeue, value.Nil()))
	if len(outs) != 2 {
		t.Fatalf("dequeue on <1,2,2> has %d outcomes, want 2 (duplicates collapse)", len(outs))
	}
	seen := map[value.Value]bool{}
	for _, o := range outs {
		seen[o.Result] = true
	}
	if !seen[value.Int(1)] || !seen[value.Int(2)] {
		t.Errorf("outcomes %v", outs)
	}
	// The spec admits observing either element: both feasible.
	for _, want := range []int64{1, 2} {
		trace := []spec.Call{
			{Inv: inv(OpEnqueue, value.Int(1)), Result: ok},
			{Inv: inv(OpEnqueue, value.Int(2)), Result: ok},
			{Inv: inv(OpDequeue, value.Nil()), Result: value.Int(want)},
		}
		if !spec.Feasible(s, trace) {
			t.Errorf("dequeue=%d infeasible", want)
		}
	}
	// But not an element never enqueued.
	bad := []spec.Call{
		{Inv: inv(OpEnqueue, value.Int(1)), Result: ok},
		{Inv: inv(OpDequeue, value.Nil()), Result: value.Int(9)},
	}
	if spec.Feasible(s, bad) {
		t.Error("dequeue of a never-enqueued element accepted")
	}
}

func TestSemiQueueRejectsBadArgs(t *testing.T) {
	st := SemiQueueSpec{}.Init()
	for _, in := range []spec.Invocation{
		inv(OpEnqueue, value.Nil()),
		inv(OpDequeue, value.Int(1)),
		inv("bogus", value.Nil()),
	} {
		if outs := st.Step(in); outs != nil {
			t.Errorf("Step(%v) accepted", in)
		}
	}
}

// TestSemiQueueConflictsVersusQueue captures the concurrency payoff cited
// in the paper's §1: semiqueue enqueues always commute, FIFO enqueues of
// different values never do.
func TestSemiQueueConflictsVersusQueue(t *testing.T) {
	e1 := inv(OpEnqueue, value.Int(1))
	e2 := inv(OpEnqueue, value.Int(2))
	dq := inv(OpDequeue, value.Nil())
	if SemiQueueConflicts(e1, e2) {
		t.Error("semiqueue enqueues of different values conflict")
	}
	if !QueueConflicts(e1, e2) {
		t.Error("FIFO enqueues of different values do not conflict")
	}
	if !SemiQueueConflicts(dq, dq) {
		t.Error("semiqueue dequeues must conservatively conflict in the static table")
	}
	if !SemiQueueConflicts(e1, dq) {
		t.Error("enqueue/dequeue must conflict")
	}
	if SemiQueueConflictsNameOnly(e1, e2) {
		t.Error("name-only table should match for the semiqueue")
	}
}

func TestSemiQueueBundle(t *testing.T) {
	ty := SemiQueue()
	if ty.Spec.Name() != "semiqueue" {
		t.Errorf("name %q", ty.Spec.Name())
	}
	if ty.Invert != nil {
		t.Error("semiqueue must use intentions-list recovery")
	}
	if !ty.IsWrite(OpEnqueue) || !ty.IsWrite(OpDequeue) {
		t.Error("IsWrite misclassifies")
	}
}
