package adts

import (
	"testing"
	"testing/quick"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func TestDirectorySerialBehaviour(t *testing.T) {
	calls, st := mustReplay(t, DirectorySpec{}, []spec.Invocation{
		inv(OpLookup, value.Int(1)),
		inv(OpBind, value.Pair(1, 100)),
		inv(OpLookup, value.Int(1)),
		inv(OpBind, value.Pair(1, 200)), // rebind
		inv(OpLookup, value.Int(1)),
		inv(OpBind, value.Pair(0, 5)), // insert before
		inv(OpUnbind, value.Int(1)),
		inv(OpLookup, value.Int(1)),
		inv(OpUnbind, value.Int(9)), // absent key ok
	})
	want := []value.Value{
		Unbound,
		value.Unit(),
		value.Int(100),
		value.Unit(),
		value.Int(200),
		value.Unit(),
		value.Unit(),
		Unbound,
		value.Unit(),
	}
	for i, w := range want {
		if calls[i].Result != w {
			t.Errorf("call %d (%v): %v, want %v", i, calls[i].Inv, calls[i].Result, w)
		}
	}
	if st.Key() != "{0:5}" {
		t.Errorf("final state %s, want {0:5}", st.Key())
	}
}

func TestDirectoryRejectsBadArgs(t *testing.T) {
	st := DirectorySpec{}.Init()
	bad := []spec.Invocation{
		inv(OpBind, value.Int(1)),
		inv(OpBind, value.Nil()),
		inv(OpUnbind, value.Pair(1, 2)),
		inv(OpLookup, value.Nil()),
		inv("bogus", value.Nil()),
	}
	for _, in := range bad {
		if outs := st.Step(in); outs != nil {
			t.Errorf("Step(%v) accepted", in)
		}
	}
}

func TestDirectoryConflicts(t *testing.T) {
	b1 := inv(OpBind, value.Pair(1, 10))
	b1same := inv(OpBind, value.Pair(1, 10))
	b1other := inv(OpBind, value.Pair(1, 20))
	b2 := inv(OpBind, value.Pair(2, 10))
	u1 := inv(OpUnbind, value.Int(1))
	u2 := inv(OpUnbind, value.Int(2))
	l1 := inv(OpLookup, value.Int(1))
	l2 := inv(OpLookup, value.Int(2))
	tests := []struct {
		p, q spec.Invocation
		want bool
	}{
		{b1, b2, false}, // distinct keys
		{b1, u2, false},
		{b1, l2, false},
		{b1, b1same, false}, // identical binds commute
		{b1, b1other, true},
		{b1, u1, true},
		{b1, l1, true},
		{u1, u1, false}, // idempotent
		{u1, l1, true},
		{l1, l1, false},
		{l1, l2, false},
	}
	for _, tt := range tests {
		if got := DirectoryConflicts(tt.p, tt.q); got != tt.want {
			t.Errorf("Conflicts(%v,%v) = %t, want %t", tt.p, tt.q, got, tt.want)
		}
		if got := DirectoryConflicts(tt.q, tt.p); got != tt.want {
			t.Errorf("Conflicts symmetry broken for (%v,%v)", tt.q, tt.p)
		}
	}
}

// TestDirectoryConflictsSoundness: non-conflicting pairs commute from random
// reachable states.
func TestDirectoryConflictsSoundness(t *testing.T) {
	f := func(binds []uint8, k1, v1, k2, v2 uint8) bool {
		st := spec.State(DirectorySpec{}.Init())
		for _, b := range binds {
			out, err := spec.Apply(st, inv(OpBind, value.Pair(int64(b%4), int64(b/4%4))))
			if err != nil {
				return false
			}
			st = out.Next
		}
		ops := []spec.Invocation{
			inv(OpBind, value.Pair(int64(k1%4), int64(v1%4))),
			inv(OpBind, value.Pair(int64(k2%4), int64(v2%4))),
			inv(OpUnbind, value.Int(int64(k1%4))),
			inv(OpUnbind, value.Int(int64(k2%4))),
			inv(OpLookup, value.Int(int64(k1%4))),
			inv(OpLookup, value.Int(int64(k2%4))),
		}
		for _, p := range ops {
			for _, q := range ops {
				if DirectoryConflicts(p, q) {
					continue
				}
				if !commutesFrom(st, p, q) {
					t.Logf("pair (%v,%v) fails to commute from %s", p, q, st.Key())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDirectoryInvert(t *testing.T) {
	st := DirectorySpec{}.Init()
	// Bind of a fresh key is undone by unbind.
	undo := DirectoryInvert(st, inv(OpBind, value.Pair(1, 10)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpUnbind {
		t.Errorf("invert fresh bind = %v", undo)
	}
	// Bind over an existing binding is undone by rebinding the old value.
	out, _ := spec.Apply(st, inv(OpBind, value.Pair(1, 10)))
	undo = DirectoryInvert(out.Next, inv(OpBind, value.Pair(1, 20)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpBind || undo[0].Arg != value.Pair(1, 10) {
		t.Errorf("invert rebind = %v", undo)
	}
	// Unbind of a bound key is undone by rebinding.
	undo = DirectoryInvert(out.Next, inv(OpUnbind, value.Int(1)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpBind || undo[0].Arg != value.Pair(1, 10) {
		t.Errorf("invert unbind = %v", undo)
	}
	// Unbind of an absent key: nothing.
	if undo := DirectoryInvert(st, inv(OpUnbind, value.Int(1)), value.Unit()); undo != nil {
		t.Errorf("invert no-op unbind = %v", undo)
	}
	// Lookup: nothing.
	if undo := DirectoryInvert(st, inv(OpLookup, value.Int(1)), Unbound); undo != nil {
		t.Errorf("invert lookup = %v", undo)
	}
}

func TestDirectoryInvertRoundTrip(t *testing.T) {
	f := func(binds []uint8, opSel, k, v uint8) bool {
		st := spec.State(DirectorySpec{}.Init())
		for _, b := range binds {
			out, err := spec.Apply(st, inv(OpBind, value.Pair(int64(b%4), int64(b/4%4))))
			if err != nil {
				return false
			}
			st = out.Next
		}
		var in spec.Invocation
		if opSel%2 == 0 {
			in = inv(OpBind, value.Pair(int64(k%4), int64(v%4)))
		} else {
			in = inv(OpUnbind, value.Int(int64(k%4)))
		}
		out, err := spec.Apply(st, in)
		if err != nil {
			return false
		}
		cur := out.Next
		for _, u := range DirectoryInvert(st, in, out.Result) {
			o, err := spec.Apply(cur, u)
			if err != nil {
				return false
			}
			cur = o.Next
		}
		return cur.Key() == st.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectoryBundle(t *testing.T) {
	ty := Directory()
	if ty.Spec.Name() != "directory" {
		t.Errorf("bundle name %q", ty.Spec.Name())
	}
	if !ty.IsWrite(OpBind) || !ty.IsWrite(OpUnbind) || ty.IsWrite(OpLookup) {
		t.Error("IsWrite misclassifies")
	}
}
