package adts

import (
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Register operation names.
const (
	OpRegRead  = "read"  // read -> current value
	OpRegWrite = "write" // write(v) -> ok
)

// RegisterSpec is a read/write register — the data model assumed by the
// classical concurrency-control literature the paper generalizes. Including
// it lets the benchmarks compare type-specific protocols against the
// read/write baseline on its home turf.
type RegisterSpec struct{}

var _ spec.SerialSpec = RegisterSpec{}

// Name implements spec.SerialSpec.
func (RegisterSpec) Name() string { return "register" }

// Init implements spec.SerialSpec: the register initially holds 0.
func (RegisterSpec) Init() spec.State { return registerState{val: value.Int(0)} }

type registerState struct {
	val value.Value
}

var _ spec.State = registerState{}

// Key implements spec.State.
func (s registerState) Key() string { return s.val.String() }

// Step implements spec.State.
func (s registerState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpRegRead:
		if !in.Arg.IsNil() {
			return nil
		}
		return one(s.val, s)
	case OpRegWrite:
		if in.Arg.IsNil() {
			return nil
		}
		return one(ok, registerState{val: in.Arg})
	default:
		return nil
	}
}

// RegisterConflicts: reads commute with reads; a write conflicts with a
// read and with a write of a different value (blind writes of the same
// value commute).
func RegisterConflicts(p, q spec.Invocation) bool {
	if p.Op == OpRegRead && q.Op == OpRegRead {
		return false
	}
	if p.Op == OpRegWrite && q.Op == OpRegWrite {
		return p.Arg != q.Arg
	}
	return true
}

// RegisterConflictsNameOnly is the classical read/write conflict table.
func RegisterConflictsNameOnly(p, q spec.Invocation) bool {
	return p.Op == OpRegWrite || q.Op == OpRegWrite
}

// RegisterIsWrite classifies register operations.
func RegisterIsWrite(op string) bool { return op == OpRegWrite }

// RegisterInvert compensates a write by writing back the previous value.
func RegisterInvert(pre spec.State, in spec.Invocation, _ value.Value) []spec.Invocation {
	st, okState := pre.(registerState)
	if !okState || in.Op != OpRegWrite {
		return nil
	}
	return []spec.Invocation{inv(OpRegWrite, st.val)}
}

// Register returns the full Type bundle for the register.
func Register() Type {
	return Type{
		Spec:              RegisterSpec{},
		Conflicts:         RegisterConflicts,
		ConflictsNameOnly: RegisterConflictsNameOnly,
		IsWrite:           RegisterIsWrite,
		Invert:            RegisterInvert,
	}
}
