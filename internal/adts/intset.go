package adts

import (
	"sort"
	"strconv"
	"strings"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// IntSet operation names.
const (
	OpInsert = "insert" // insert(n) -> ok
	OpDelete = "delete" // delete(n) -> ok
	OpMember = "member" // member(n) -> true | false
	OpSize   = "size"   // size -> int
	OpPick   = "pick"   // pick -> any element (nondeterministic) | nil on empty
)

// IntSetSpec is the serial specification of the paper's integer-set object
// (§2): a set of integers with insert, delete and membership operations,
// initially empty. We add a size observer and a nondeterministic pick
// operation (which may return any current element) to exercise the model's
// support for nondeterministic operations.
type IntSetSpec struct{}

var _ spec.SerialSpec = IntSetSpec{}

// Name implements spec.SerialSpec.
func (IntSetSpec) Name() string { return "intset" }

// Init implements spec.SerialSpec: the set is initially empty.
func (IntSetSpec) Init() spec.State { return intSetState(nil) }

// intSetState is a sorted slice of distinct elements. It is persistent:
// Step returns fresh slices and never mutates the receiver.
type intSetState []int64

var _ spec.State = intSetState(nil)

// Key implements spec.State.
func (s intSetState) Key() string {
	parts := make([]string, len(s))
	for i, n := range s {
		parts[i] = strconv.FormatInt(n, 10)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Has reports whether n is in the set. It is exported on the state so the
// conflict engine's per-block summary tier can read membership without
// depending on the concrete representation.
func (s intSetState) Has(n int64) bool {
	_, present := s.index(n)
	return present
}

func (s intSetState) index(n int64) (int, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= n })
	return i, i < len(s) && s[i] == n
}

func (s intSetState) with(n int64) intSetState {
	i, present := s.index(n)
	if present {
		return s
	}
	out := make(intSetState, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, n)
	out = append(out, s[i:]...)
	return out
}

func (s intSetState) without(n int64) intSetState {
	i, present := s.index(n)
	if !present {
		return s
	}
	out := make(intSetState, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Step implements spec.State.
func (s intSetState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpInsert:
		n, okArg := in.Arg.AsInt()
		if !okArg {
			return nil
		}
		return one(ok, s.with(n))
	case OpDelete:
		n, okArg := in.Arg.AsInt()
		if !okArg {
			return nil
		}
		return one(ok, s.without(n))
	case OpMember:
		n, okArg := in.Arg.AsInt()
		if !okArg {
			return nil
		}
		_, present := s.index(n)
		return one(value.Bool(present), s)
	case OpSize:
		if !in.Arg.IsNil() {
			return nil
		}
		return one(value.Int(int64(len(s))), s)
	case OpPick:
		if !in.Arg.IsNil() {
			return nil
		}
		if len(s) == 0 {
			return one(value.Nil(), s)
		}
		outs := make([]spec.Outcome, len(s))
		for i, n := range s {
			outs[i] = spec.Outcome{Result: value.Int(n), Next: s}
		}
		return outs
	default:
		return nil
	}
}

// IntSetConflicts is the argument-aware commutativity predicate for the
// integer set. Operations on distinct elements always commute; insert and
// delete of the same element, or an observer of an element concurrent with
// a mutator of that element, conflict. The size and pick observers conflict
// with every mutator (their results can depend on any element).
func IntSetConflicts(p, q spec.Invocation) bool {
	if IntSetConflicts2(p, q) || IntSetConflicts2(q, p) {
		return true
	}
	return false
}

// IntSetConflicts2 is the one-directional helper behind IntSetConflicts.
func IntSetConflicts2(p, q spec.Invocation) bool {
	pm, qm := intSetMutator(p.Op), intSetMutator(q.Op)
	if !pm && !qm {
		return false // two observers always commute
	}
	// At least one mutator. Same-element interactions:
	pn, pHasArg := p.Arg.AsInt()
	qn, qHasArg := q.Arg.AsInt()
	switch {
	case p.Op == OpSize || p.Op == OpPick:
		return qm
	case q.Op == OpSize || q.Op == OpPick:
		return pm
	case pHasArg && qHasArg && pn != qn:
		return false // distinct elements commute
	case p.Op == OpInsert && q.Op == OpInsert:
		return false // idempotent: same final state, same results
	case p.Op == OpDelete && q.Op == OpDelete:
		return false
	default:
		// insert/delete, insert/member, delete/member of the same element.
		return true
	}
}

// IntSetConflictsNameOnly is the name-only conflict table: any mutator
// conflicts with any operation other than a paired idempotent mutator,
// because without arguments the elements must be assumed equal.
func IntSetConflictsNameOnly(p, q spec.Invocation) bool {
	pm, qm := intSetMutator(p.Op), intSetMutator(q.Op)
	if !pm && !qm {
		return false
	}
	if p.Op == OpInsert && q.Op == OpInsert {
		return false
	}
	if p.Op == OpDelete && q.Op == OpDelete {
		return false
	}
	return true
}

func intSetMutator(op string) bool { return op == OpInsert || op == OpDelete }

// IntSetIsWrite classifies integer-set operations for read/write locking.
func IntSetIsWrite(op string) bool { return intSetMutator(op) }

// IntSetInvert produces compensating invocations for update-in-place
// recovery: an insert that actually added the element is undone by a
// delete, and vice versa; observers and no-op mutators need no
// compensation.
func IntSetInvert(pre spec.State, in spec.Invocation, _ value.Value) []spec.Invocation {
	st, okState := pre.(intSetState)
	if !okState {
		return nil
	}
	n, hasArg := in.Arg.AsInt()
	if !hasArg {
		return nil
	}
	_, present := st.index(n)
	switch in.Op {
	case OpInsert:
		if present {
			return nil // already there: insert changed nothing
		}
		return []spec.Invocation{inv(OpDelete, value.Int(n))}
	case OpDelete:
		if !present {
			return nil
		}
		return []spec.Invocation{inv(OpInsert, value.Int(n))}
	default:
		return nil
	}
}

// IntSet returns the full Type bundle for the integer set.
func IntSet() Type {
	return Type{
		Spec:              IntSetSpec{},
		Conflicts:         IntSetConflicts,
		ConflictsNameOnly: IntSetConflictsNameOnly,
		IsWrite:           IntSetIsWrite,
		Invert:            IntSetInvert,
	}
}
