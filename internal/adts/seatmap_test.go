package adts

import (
	"testing"
	"testing/quick"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func TestSeatMapSerialBehaviour(t *testing.T) {
	calls, st := mustReplay(t, SeatMapSpec{Seats: 3}, []spec.Invocation{
		inv(OpFree, value.Nil()),
		inv(OpReserve, value.Int(0)),
		inv(OpReserve, value.Int(0)), // taken
		inv(OpReserve, value.Int(2)),
		inv(OpFree, value.Nil()),
		inv(OpRelease, value.Int(0)),
		inv(OpFree, value.Nil()),
		inv(OpRelease, value.Int(1)), // releasing a free seat is ok
	})
	want := []value.Value{
		value.Int(3),
		value.Unit(),
		Taken,
		value.Unit(),
		value.Int(1),
		value.Unit(),
		value.Int(2),
		value.Unit(),
	}
	for i, w := range want {
		if calls[i].Result != w {
			t.Errorf("call %d (%v): %v, want %v", i, calls[i].Inv, calls[i].Result, w)
		}
	}
	if st.Key() != "001" {
		t.Errorf("final state %s, want 001", st.Key())
	}
}

func TestSeatMapRejectsBadArgs(t *testing.T) {
	st := SeatMapSpec{Seats: 2}.Init()
	bad := []spec.Invocation{
		inv(OpReserve, value.Int(-1)),
		inv(OpReserve, value.Int(2)),
		inv(OpReserve, value.Nil()),
		inv(OpRelease, value.Int(5)),
		inv(OpFree, value.Int(0)),
		inv("bogus", value.Nil()),
	}
	for _, in := range bad {
		if outs := st.Step(in); outs != nil {
			t.Errorf("Step(%v) accepted", in)
		}
	}
}

func TestSeatMapConflicts(t *testing.T) {
	r0 := inv(OpReserve, value.Int(0))
	r1 := inv(OpReserve, value.Int(1))
	rel0 := inv(OpRelease, value.Int(0))
	rel0b := inv(OpRelease, value.Int(0))
	free := inv(OpFree, value.Nil())
	tests := []struct {
		p, q spec.Invocation
		want bool
	}{
		{r0, r1, false},
		{r0, r0, true},
		{r0, rel0, true},
		{rel0, rel0b, false}, // idempotent
		{free, r0, true},
		{free, rel0, true},
		{free, free, false},
	}
	for _, tt := range tests {
		if got := SeatMapConflicts(tt.p, tt.q); got != tt.want {
			t.Errorf("Conflicts(%v,%v) = %t, want %t", tt.p, tt.q, got, tt.want)
		}
	}
	if !SeatMapConflictsNameOnly(r0, r1) {
		t.Error("name-only reserve/reserve must conflict")
	}
}

func TestSeatMapConflictsSoundness(t *testing.T) {
	f := func(taken uint8, s1, s2 uint8) bool {
		sm := SeatMapSpec{Seats: 4}
		st := spec.State(sm.Init())
		for i := 0; i < 4; i++ {
			if taken&(1<<i) != 0 {
				out, err := spec.Apply(st, inv(OpReserve, value.Int(int64(i))))
				if err != nil {
					return false
				}
				st = out.Next
			}
		}
		ops := []spec.Invocation{
			inv(OpReserve, value.Int(int64(s1%4))),
			inv(OpReserve, value.Int(int64(s2%4))),
			inv(OpRelease, value.Int(int64(s1%4))),
			inv(OpRelease, value.Int(int64(s2%4))),
			inv(OpFree, value.Nil()),
		}
		for _, p := range ops {
			for _, q := range ops {
				if SeatMapConflicts(p, q) {
					continue
				}
				if !commutesFrom(st, p, q) {
					t.Logf("pair (%v,%v) fails to commute from %s", p, q, st.Key())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSeatMapInvert(t *testing.T) {
	sm := SeatMapSpec{Seats: 2}
	st := sm.Init()
	undo := SeatMapInvert(st, inv(OpReserve, value.Int(0)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpRelease {
		t.Errorf("invert reserve = %v", undo)
	}
	// Failed reserve: nothing changed.
	out, _ := spec.Apply(st, inv(OpReserve, value.Int(0)))
	if undo := SeatMapInvert(out.Next, inv(OpReserve, value.Int(0)), Taken); undo != nil {
		t.Errorf("invert failed reserve = %v", undo)
	}
	// Release of a taken seat restores it.
	undo = SeatMapInvert(out.Next, inv(OpRelease, value.Int(0)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpReserve {
		t.Errorf("invert release = %v", undo)
	}
	// Release of a free seat: nothing.
	if undo := SeatMapInvert(st, inv(OpRelease, value.Int(0)), value.Unit()); undo != nil {
		t.Errorf("invert no-op release = %v", undo)
	}
	// Out-of-range argument: decline.
	if undo := SeatMapInvert(st, inv(OpReserve, value.Int(9)), value.Unit()); undo != nil {
		t.Errorf("invert out-of-range = %v", undo)
	}
}

func TestSeatMapBundle(t *testing.T) {
	ty := SeatMap(5)
	if ty.Spec.Name() != "seatmap" {
		t.Errorf("bundle name %q", ty.Spec.Name())
	}
	st := ty.Spec.Init()
	outs := st.Step(inv(OpFree, value.Nil()))
	if len(outs) != 1 || outs[0].Result != value.Int(5) {
		t.Errorf("free on fresh 5-seat map = %v", outs)
	}
}
