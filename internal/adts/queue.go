package adts

import (
	"strconv"
	"strings"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// FIFO queue operation names and results.
const (
	OpEnqueue = "enqueue" // enqueue(n) -> ok
	OpDequeue = "dequeue" // dequeue -> front element | empty
)

// EmptyQueue is the result of dequeuing an empty queue.
var EmptyQueue = value.Str("empty")

// QueueSpec is the first-in-first-out queue of §5.1, with operations to
// enqueue an integer onto the back and dequeue an integer from the front.
type QueueSpec struct{}

var _ spec.SerialSpec = QueueSpec{}

// Name implements spec.SerialSpec.
func (QueueSpec) Name() string { return "queue" }

// Init implements spec.SerialSpec.
func (QueueSpec) Init() spec.State { return queueState(nil) }

// queueState is the queue contents, front first. Persistent: Step copies.
type queueState []int64

var _ spec.State = queueState(nil)

// Key implements spec.State.
func (s queueState) Key() string {
	parts := make([]string, len(s))
	for i, n := range s {
		parts[i] = strconv.FormatInt(n, 10)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Step implements spec.State.
func (s queueState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpEnqueue:
		n, okArg := in.Arg.AsInt()
		if !okArg {
			return nil
		}
		next := make(queueState, 0, len(s)+1)
		next = append(next, s...)
		next = append(next, n)
		return one(ok, next)
	case OpDequeue:
		if !in.Arg.IsNil() {
			return nil
		}
		if len(s) == 0 {
			return one(EmptyQueue, s)
		}
		next := make(queueState, len(s)-1)
		copy(next, s[1:])
		return one(value.Int(s[0]), next)
	default:
		return nil
	}
}

// QueueConflicts: as the paper observes, an operation to enqueue 1 does not
// commute with an operation to enqueue 2 — the queue order differs — and
// dequeue commutes with nothing. Enqueues of equal values commute (both
// orders give the same contents and results).
func QueueConflicts(p, q spec.Invocation) bool {
	if p.Op == OpDequeue || q.Op == OpDequeue {
		return true
	}
	// Both enqueues: conflict exactly when the values differ.
	pn, _ := p.Arg.AsInt()
	qn, _ := q.Arg.AsInt()
	return pn != qn
}

// QueueConflictsNameOnly: without arguments, any two queue operations must
// be assumed to conflict.
func QueueConflictsNameOnly(p, q spec.Invocation) bool { return true }

// QueueIsWrite classifies queue operations: both mutate.
func QueueIsWrite(op string) bool { return true }

// Queue returns the full Type bundle for the FIFO queue. There is no
// inverter: dequeue cannot be compensated without splicing into the middle
// of the queue, so the queue uses intentions-list recovery.
func Queue() Type {
	return Type{
		Spec:              QueueSpec{},
		Conflicts:         QueueConflicts,
		ConflictsNameOnly: QueueConflictsNameOnly,
		IsWrite:           QueueIsWrite,
		Invert:            nil,
	}
}
