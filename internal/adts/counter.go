package adts

import (
	"strconv"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Counter operation names.
const (
	OpIncrement = "increment" // increment -> resulting value
	OpRead      = "read"      // read -> current value
)

// CounterSpec is the object y from the paper's optimality proof (§4.1): its
// state is initially zero, and each invocation of increment increments the
// state and returns the resulting value. Because every increment returns
// the running count, the serial sequences of a counter reveal the complete
// serialization order of the activities using it — which is exactly why the
// optimality proof uses it to pin an arbitrary total order T. We add a read
// observer for the protocol benchmarks; the optimality tests use only
// increment.
type CounterSpec struct{}

var _ spec.SerialSpec = CounterSpec{}

// Name implements spec.SerialSpec.
func (CounterSpec) Name() string { return "counter" }

// Init implements spec.SerialSpec.
func (CounterSpec) Init() spec.State { return counterState(0) }

type counterState int64

var _ spec.State = counterState(0)

// Key implements spec.State.
func (s counterState) Key() string { return strconv.FormatInt(int64(s), 10) }

// Step implements spec.State.
func (s counterState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpIncrement:
		if !in.Arg.IsNil() {
			return nil
		}
		return one(value.Int(int64(s)+1), s+1)
	case OpRead:
		if !in.Arg.IsNil() {
			return nil
		}
		return one(value.Int(int64(s)), s)
	default:
		return nil
	}
}

// CounterConflicts: increments do not commute (each returns the running
// count, so the results depend on order), and read conflicts with
// increment.
func CounterConflicts(p, q spec.Invocation) bool {
	return p.Op == OpIncrement || q.Op == OpIncrement
}

// CounterConflictsNameOnly is identical to CounterConflicts: the operations
// take no arguments, so there is no finer argument-aware distinction.
func CounterConflictsNameOnly(p, q spec.Invocation) bool { return CounterConflicts(p, q) }

// CounterIsWrite classifies counter operations for read/write locking.
func CounterIsWrite(op string) bool { return op == OpIncrement }

// CounterInvert compensates an increment by decrementing. The serial spec
// has no decrement operation (the paper's object has only increment), so
// update-in-place recovery is not supported; intentions lists are used
// instead.
func CounterInvert(spec.State, spec.Invocation, value.Value) []spec.Invocation { return nil }

// Counter returns the full Type bundle for the counter.
func Counter() Type {
	return Type{
		Spec:              CounterSpec{},
		Conflicts:         CounterConflicts,
		ConflictsNameOnly: CounterConflictsNameOnly,
		IsWrite:           CounterIsWrite,
		Invert:            nil,
	}
}
