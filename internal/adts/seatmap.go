package adts

import (
	"strings"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Seat-map operation names and results.
const (
	OpReserve = "reserve" // reserve(s) -> ok | taken
	OpRelease = "release" // release(s) -> ok
	OpFree    = "free"    // free -> number of free seats
)

// Taken is the abnormal result of reserving an occupied seat.
var Taken = value.Str("taken")

// SeatMapSpec is an airline-reservation seat map — one of the motivating
// applications in the paper's introduction. A fixed number of seats may be
// reserved and released; reservations of distinct seats commute.
type SeatMapSpec struct {
	// Seats is the seat count; seats are numbered 0..Seats-1.
	Seats int
}

var _ spec.SerialSpec = SeatMapSpec{}

// Name implements spec.SerialSpec.
func (SeatMapSpec) Name() string { return "seatmap" }

// Init implements spec.SerialSpec: all seats initially free.
func (s SeatMapSpec) Init() spec.State {
	return seatMapState{taken: make([]bool, s.Seats)}
}

type seatMapState struct {
	taken []bool
}

var _ spec.State = seatMapState{}

// Key implements spec.State.
func (s seatMapState) Key() string {
	var sb strings.Builder
	for _, t := range s.taken {
		if t {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func (s seatMapState) with(seat int, v bool) seatMapState {
	out := make([]bool, len(s.taken))
	copy(out, s.taken)
	out[seat] = v
	return seatMapState{taken: out}
}

// Step implements spec.State.
func (s seatMapState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpReserve:
		n, okArg := in.Arg.AsInt()
		if !okArg || n < 0 || int(n) >= len(s.taken) {
			return nil
		}
		if s.taken[n] {
			return one(Taken, s)
		}
		return one(ok, s.with(int(n), true))
	case OpRelease:
		n, okArg := in.Arg.AsInt()
		if !okArg || n < 0 || int(n) >= len(s.taken) {
			return nil
		}
		return one(ok, s.with(int(n), false))
	case OpFree:
		if !in.Arg.IsNil() {
			return nil
		}
		free := 0
		for _, t := range s.taken {
			if !t {
				free++
			}
		}
		return one(value.Int(int64(free)), s)
	default:
		return nil
	}
}

// SeatMapConflicts: operations on distinct seats commute; reserve/reserve
// of the same seat conflicts (the winner depends on order), as do
// reserve/release of the same seat; the free observer conflicts with every
// mutator.
func SeatMapConflicts(p, q spec.Invocation) bool {
	if p.Op == OpFree || q.Op == OpFree {
		return SeatMapIsWrite(p.Op) || SeatMapIsWrite(q.Op)
	}
	pn, okP := p.Arg.AsInt()
	qn, okQ := q.Arg.AsInt()
	if !okP || !okQ || pn != qn {
		return false
	}
	if p.Op == OpRelease && q.Op == OpRelease {
		return false
	}
	return true
}

// SeatMapConflictsNameOnly: seats must be assumed equal.
func SeatMapConflictsNameOnly(p, q spec.Invocation) bool {
	pm, qm := SeatMapIsWrite(p.Op), SeatMapIsWrite(q.Op)
	if !pm && !qm {
		return false
	}
	if p.Op == OpRelease && q.Op == OpRelease {
		return false
	}
	return true
}

// SeatMapIsWrite classifies seat-map operations.
func SeatMapIsWrite(op string) bool { return op == OpReserve || op == OpRelease }

// SeatMapInvert compensates mutators by restoring the seat's previous
// occupancy.
func SeatMapInvert(pre spec.State, in spec.Invocation, res value.Value) []spec.Invocation {
	st, okState := pre.(seatMapState)
	if !okState || !SeatMapIsWrite(in.Op) {
		return nil
	}
	n, okArg := in.Arg.AsInt()
	if !okArg || n < 0 || int(n) >= len(st.taken) {
		return nil
	}
	was := st.taken[n]
	switch in.Op {
	case OpReserve:
		if res != ok {
			return nil // reservation failed, nothing changed
		}
		return []spec.Invocation{inv(OpRelease, value.Int(n))}
	case OpRelease:
		if !was {
			return nil
		}
		return []spec.Invocation{inv(OpReserve, value.Int(n))}
	default:
		return nil
	}
}

// SeatMap returns the full Type bundle for a seat map with the given number
// of seats.
func SeatMap(seats int) Type {
	return Type{
		Spec:              SeatMapSpec{Seats: seats},
		Conflicts:         SeatMapConflicts,
		ConflictsNameOnly: SeatMapConflictsNameOnly,
		IsWrite:           SeatMapIsWrite,
		Invert:            SeatMapInvert,
	}
}
