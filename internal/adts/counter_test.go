package adts

import (
	"testing"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// TestCounterPaperSerialForm checks the §4.1 optimality-proof object: each
// increment returns the running count, so the serial sequences have the
// form <increment,y,a1> <1,y,a1> ... <increment,y,an> <n,y,an>.
func TestCounterPaperSerialForm(t *testing.T) {
	calls, st := mustReplay(t, CounterSpec{}, []spec.Invocation{
		inv(OpIncrement, value.Nil()),
		inv(OpIncrement, value.Nil()),
		inv(OpIncrement, value.Nil()),
	})
	for i, c := range calls {
		if c.Result != value.Int(int64(i+1)) {
			t.Errorf("increment %d returned %v, want %d", i, c.Result, i+1)
		}
	}
	if st.Key() != "3" {
		t.Errorf("final state %s, want 3", st.Key())
	}
}

func TestCounterRead(t *testing.T) {
	calls, _ := mustReplay(t, CounterSpec{}, []spec.Invocation{
		inv(OpRead, value.Nil()),
		inv(OpIncrement, value.Nil()),
		inv(OpRead, value.Nil()),
	})
	if calls[0].Result != value.Int(0) || calls[2].Result != value.Int(1) {
		t.Errorf("reads = %v, %v", calls[0].Result, calls[2].Result)
	}
}

func TestCounterRejectsBadArgs(t *testing.T) {
	st := CounterSpec{}.Init()
	if outs := st.Step(inv(OpIncrement, value.Int(1))); outs != nil {
		t.Errorf("increment with arg accepted: %v", outs)
	}
	if outs := st.Step(inv(OpRead, value.Int(1))); outs != nil {
		t.Errorf("read with arg accepted: %v", outs)
	}
	if outs := st.Step(inv("bogus", value.Nil())); outs != nil {
		t.Errorf("bogus op accepted: %v", outs)
	}
}

func TestCounterConflicts(t *testing.T) {
	incr := inv(OpIncrement, value.Nil())
	rd := inv(OpRead, value.Nil())
	if !CounterConflicts(incr, incr) {
		t.Error("increments must conflict (results depend on order)")
	}
	if !CounterConflicts(incr, rd) {
		t.Error("increment/read must conflict")
	}
	if CounterConflicts(rd, rd) {
		t.Error("read/read must not conflict")
	}
	// Semantic witness: increments do not commute.
	if commutesFrom(CounterSpec{}.Init(), incr, incr) {
		t.Error("increments commute; the optimality construction depends on them not commuting")
	}
	if CounterConflictsNameOnly(rd, rd) {
		t.Error("name-only read/read must not conflict")
	}
}

func TestCounterBundle(t *testing.T) {
	ty := Counter()
	if ty.Spec.Name() != "counter" {
		t.Errorf("bundle name %q", ty.Spec.Name())
	}
	if ty.Invert != nil {
		t.Error("counter must not advertise update-in-place recovery")
	}
	if !ty.IsWrite(OpIncrement) || ty.IsWrite(OpRead) {
		t.Error("IsWrite misclassifies")
	}
}

// TestCounterInvertIsNil documents that CounterInvert exists for symmetry
// but always declines.
func TestCounterInvertIsNil(t *testing.T) {
	if got := CounterInvert(CounterSpec{}.Init(), inv(OpIncrement, value.Nil()), value.Int(1)); got != nil {
		t.Errorf("CounterInvert = %v, want nil", got)
	}
}
