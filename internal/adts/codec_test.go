package adts

import (
	"bytes"
	"math/rand"
	"testing"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// codecCases enumerates every built-in ADT with a generator of random
// invocations driving its state through representative shapes (empty,
// grown, shrunk, rebound). The seat count is kept small so release/reserve
// collide often.
func codecCases(seats int) map[string]struct {
	typ Type
	gen func(r *rand.Rand) spec.Invocation
} {
	return map[string]struct {
		typ Type
		gen func(r *rand.Rand) spec.Invocation
	}{
		"account": {Account(), func(r *rand.Rand) spec.Invocation {
			switch r.Intn(3) {
			case 0:
				return inv(OpDeposit, value.Int(r.Int63n(1000)))
			case 1:
				return inv(OpWithdraw, value.Int(r.Int63n(1000)))
			default:
				return inv(OpBalance, value.Nil())
			}
		}},
		"counter": {Counter(), func(r *rand.Rand) spec.Invocation {
			if r.Intn(2) == 0 {
				return inv(OpIncrement, value.Nil())
			}
			return inv(OpRead, value.Nil())
		}},
		"queue": {Queue(), func(r *rand.Rand) spec.Invocation {
			if r.Intn(3) > 0 {
				return inv(OpEnqueue, value.Int(r.Int63n(100)))
			}
			return inv(OpDequeue, value.Nil())
		}},
		"semiqueue": {SemiQueue(), func(r *rand.Rand) spec.Invocation {
			if r.Intn(3) > 0 {
				return inv(OpEnqueue, value.Int(r.Int63n(100)))
			}
			return inv(OpDequeue, value.Nil())
		}},
		"intset": {IntSet(), func(r *rand.Rand) spec.Invocation {
			n := value.Int(r.Int63n(32))
			switch r.Intn(3) {
			case 0:
				return inv(OpInsert, n)
			case 1:
				return inv(OpDelete, n)
			default:
				return inv(OpMember, n)
			}
		}},
		"register": {Register(), func(r *rand.Rand) spec.Invocation {
			if r.Intn(2) == 0 {
				return inv(OpRegWrite, value.Int(r.Int63n(1000)))
			}
			return inv(OpRegRead, value.Nil())
		}},
		"directory": {Directory(), func(r *rand.Rand) spec.Invocation {
			k := r.Int63n(16)
			switch r.Intn(3) {
			case 0:
				return inv(OpBind, value.Pair(k, r.Int63n(100)))
			case 1:
				return inv(OpUnbind, value.Int(k))
			default:
				return inv(OpLookup, value.Int(k))
			}
		}},
		"seatmap": {SeatMap(seats), func(r *rand.Rand) spec.Invocation {
			s := value.Int(r.Int63n(int64(seats)))
			switch r.Intn(3) {
			case 0:
				return inv(OpReserve, s)
			case 1:
				return inv(OpRelease, s)
			default:
				return inv(OpFree, value.Nil())
			}
		}},
	}
}

// TestStateCodecRoundTrip drives every built-in ADT through a seeded random
// walk and checks, at every step, the durability contract of
// spec.StateCodec: DecodeState(EncodeState(st)) yields a behaviourally
// identical state (equal Key) and the encoding is canonical (re-encoding
// the decoded state reproduces the bytes). Replica seeding, checkpoint
// snapshots, and shard migration all ride on this round trip.
func TestStateCodecRoundTrip(t *testing.T) {
	for name, tc := range codecCases(8) {
		t.Run(name, func(t *testing.T) {
			codec, ok := tc.typ.Spec.(spec.StateCodec)
			if !ok {
				t.Fatalf("%s spec does not implement spec.StateCodec", name)
			}
			r := rand.New(rand.NewSource(42))
			st := tc.typ.Spec.Init()
			for i := 0; i <= 400; i++ {
				b, err := codec.EncodeState(st)
				if err != nil {
					t.Fatalf("step %d: encode: %v", i, err)
				}
				rt, err := codec.DecodeState(b)
				if err != nil {
					t.Fatalf("step %d: decode(%q): %v", i, b, err)
				}
				if got, want := rt.Key(), st.Key(); got != want {
					t.Fatalf("step %d: round trip changed state: key %q, want %q", i, got, want)
				}
				b2, err := codec.EncodeState(rt)
				if err != nil {
					t.Fatalf("step %d: re-encode: %v", i, err)
				}
				if !bytes.Equal(b, b2) {
					t.Fatalf("step %d: encoding not canonical: %q then %q", i, b, b2)
				}
				out, err := spec.Apply(st, tc.gen(r))
				if err != nil {
					continue // not permitted in this state; try another op
				}
				st = out.Next
			}
		})
	}
}

// TestStateCodecRejectsForeignState pins the error path: feeding a state
// from one spec into another spec's encoder must fail, not mis-encode.
func TestStateCodecRejectsForeignState(t *testing.T) {
	queueSt := Queue().Spec.Init()
	if _, err := (AccountSpec{}).EncodeState(queueSt); err == nil {
		t.Fatal("account codec accepted a queue state")
	}
}

// FuzzStateDecode throws arbitrary bytes at every built-in decoder. A
// decoder must never panic; when it accepts an input, the decoded state
// must survive its own encode/decode round trip with the same Key — a
// corrupted checkpoint either fails cleanly or yields a coherent state,
// never a half-parsed one.
func FuzzStateDecode(f *testing.F) {
	f.Add([]byte(`17`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`[{"k":1,"v":2}]`))
	f.Add([]byte(`[true,false,true,false,true,false,true,false]`))
	f.Add([]byte(`{"kind":"int","i":5}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		for name, tc := range codecCases(8) {
			codec := tc.typ.Spec.(spec.StateCodec)
			st, err := codec.DecodeState(data)
			if err != nil {
				continue
			}
			b, err := codec.EncodeState(st)
			if err != nil {
				t.Fatalf("%s: accepted %q but cannot re-encode: %v", name, data, err)
			}
			rt, err := codec.DecodeState(b)
			if err != nil {
				t.Fatalf("%s: cannot decode own encoding %q: %v", name, b, err)
			}
			if rt.Key() != st.Key() {
				t.Fatalf("%s: round trip of accepted input %q changed state: %q vs %q", name, data, rt.Key(), st.Key())
			}
		}
	})
}
