package adts

import (
	"testing"
	"testing/quick"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func mustReplay(t *testing.T, s spec.SerialSpec, invs []spec.Invocation) ([]spec.Call, spec.State) {
	t.Helper()
	calls, st, err := spec.Replay(s, invs)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return calls, st
}

func TestIntSetSerialBehaviour(t *testing.T) {
	s := IntSetSpec{}
	calls, st := mustReplay(t, s, []spec.Invocation{
		inv(OpMember, value.Int(3)),
		inv(OpInsert, value.Int(3)),
		inv(OpMember, value.Int(3)),
		inv(OpInsert, value.Int(1)),
		inv(OpSize, value.Nil()),
		inv(OpDelete, value.Int(3)),
		inv(OpMember, value.Int(3)),
		inv(OpDelete, value.Int(99)), // deleting an absent element is ok
		inv(OpInsert, value.Int(1)),  // re-inserting is ok
		inv(OpSize, value.Nil()),
	})
	wantResults := []value.Value{
		value.Bool(false),
		value.Unit(),
		value.Bool(true),
		value.Unit(),
		value.Int(2),
		value.Unit(),
		value.Bool(false),
		value.Unit(),
		value.Unit(),
		value.Int(1),
	}
	for i, w := range wantResults {
		if calls[i].Result != w {
			t.Errorf("call %d (%v): result %v, want %v", i, calls[i].Inv, calls[i].Result, w)
		}
	}
	if st.Key() != "{1}" {
		t.Errorf("final state %s, want {1}", st.Key())
	}
}

func TestIntSetPickNondeterminism(t *testing.T) {
	s := IntSetSpec{}
	_, st := mustReplay(t, s, []spec.Invocation{
		inv(OpInsert, value.Int(1)),
		inv(OpInsert, value.Int(2)),
	})
	outs := st.Step(inv(OpPick, value.Nil()))
	if len(outs) != 2 {
		t.Fatalf("pick on {1,2} has %d outcomes, want 2", len(outs))
	}
	seen := map[value.Value]bool{}
	for _, o := range outs {
		seen[o.Result] = true
	}
	if !seen[value.Int(1)] || !seen[value.Int(2)] {
		t.Errorf("pick outcomes %v, want {1,2}", outs)
	}
	// Pick on the empty set returns nil deterministically.
	empty := s.Init().Step(inv(OpPick, value.Nil()))
	if len(empty) != 1 || empty[0].Result != value.Nil() {
		t.Errorf("pick on empty = %v", empty)
	}
}

func TestIntSetRejectsBadArgs(t *testing.T) {
	st := IntSetSpec{}.Init()
	bad := []spec.Invocation{
		inv(OpInsert, value.Nil()),
		inv(OpInsert, value.Bool(true)),
		inv(OpMember, value.Nil()),
		inv(OpDelete, value.Str("x")),
		inv(OpSize, value.Int(1)),
		inv(OpPick, value.Int(1)),
		inv("bogus", value.Nil()),
	}
	for _, in := range bad {
		if outs := st.Step(in); outs != nil {
			t.Errorf("Step(%v) = %v, want nil", in, outs)
		}
	}
}

func TestIntSetStateIsPersistent(t *testing.T) {
	st := IntSetSpec{}.Init()
	out, err := spec.Apply(st, inv(OpInsert, value.Int(3)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Key() != "{}" {
		t.Errorf("initial state mutated to %s", st.Key())
	}
	if out.Next.Key() != "{3}" {
		t.Errorf("next state %s, want {3}", out.Next.Key())
	}
}

func TestIntSetConflictsTable(t *testing.T) {
	i3 := inv(OpInsert, value.Int(3))
	i4 := inv(OpInsert, value.Int(4))
	d3 := inv(OpDelete, value.Int(3))
	d4 := inv(OpDelete, value.Int(4))
	m3 := inv(OpMember, value.Int(3))
	m4 := inv(OpMember, value.Int(4))
	size := inv(OpSize, value.Nil())
	pick := inv(OpPick, value.Nil())

	tests := []struct {
		p, q spec.Invocation
		want bool
	}{
		{i3, i3, false}, // idempotent
		{i3, i4, false},
		{i3, d3, true},
		{i3, d4, false},
		{i3, m3, true},
		{i3, m4, false},
		{d3, d3, false},
		{d3, m3, true},
		{d3, m4, false},
		{m3, m3, false},
		{m3, m4, false},
		{size, i3, true},
		{size, d3, true},
		{size, m3, false},
		{size, size, false},
		{pick, i3, true},
		{pick, m3, false},
	}
	for _, tt := range tests {
		if got := IntSetConflicts(tt.p, tt.q); got != tt.want {
			t.Errorf("Conflicts(%v,%v) = %t, want %t", tt.p, tt.q, got, tt.want)
		}
		if got := IntSetConflicts(tt.q, tt.p); got != tt.want {
			t.Errorf("Conflicts(%v,%v) = %t, want %t (symmetry)", tt.q, tt.p, got, tt.want)
		}
	}
}

func TestIntSetNameOnlyCoarserThanArgAware(t *testing.T) {
	// The name-only table must conflict whenever the arg-aware table does
	// (it has strictly less information).
	ops := []spec.Invocation{
		inv(OpInsert, value.Int(3)),
		inv(OpInsert, value.Int(4)),
		inv(OpDelete, value.Int(3)),
		inv(OpMember, value.Int(3)),
		inv(OpMember, value.Int(4)),
		inv(OpSize, value.Nil()),
		inv(OpPick, value.Nil()),
	}
	for _, p := range ops {
		for _, q := range ops {
			if IntSetConflicts(p, q) && !IntSetConflictsNameOnly(p, q) {
				t.Errorf("name-only misses conflict (%v,%v)", p, q)
			}
		}
	}
	// And it must actually be coarser somewhere: distinct elements.
	p := inv(OpInsert, value.Int(3))
	q := inv(OpMember, value.Int(4))
	if !IntSetConflictsNameOnly(p, q) {
		t.Error("name-only table unexpectedly fine-grained for insert/member")
	}
}

// TestIntSetConflictsSoundness is the semantic justification of the conflict
// table: if the table says two invocations do not conflict, executing them
// in either order from a random reachable state must give the same results
// and the same final state (i.e. they commute).
func TestIntSetConflictsSoundness(t *testing.T) {
	ops := func(n1, n2 int64) []spec.Invocation {
		return []spec.Invocation{
			inv(OpInsert, value.Int(n1)),
			inv(OpDelete, value.Int(n1)),
			inv(OpMember, value.Int(n1)),
			inv(OpInsert, value.Int(n2)),
			inv(OpDelete, value.Int(n2)),
			inv(OpMember, value.Int(n2)),
			inv(OpSize, value.Nil()),
		}
	}
	f := func(seed uint8, elems []uint8) bool {
		// Build a reachable state.
		st := spec.State(IntSetSpec{}.Init())
		for _, e := range elems {
			out, err := spec.Apply(st, inv(OpInsert, value.Int(int64(e%6))))
			if err != nil {
				return false
			}
			st = out.Next
		}
		n1 := int64(seed % 6)
		n2 := int64((seed / 6) % 6)
		for _, p := range ops(n1, n2) {
			for _, q := range ops(n1, n2) {
				if IntSetConflicts(p, q) {
					continue
				}
				if !commutesFrom(st, p, q) {
					t.Logf("non-conflicting pair (%v,%v) fails to commute from %s", p, q, st.Key())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// commutesFrom checks result- and state-commutativity of p then q versus q
// then p from st (deterministic specs only).
func commutesFrom(st spec.State, p, q spec.Invocation) bool {
	o1, err1 := spec.Apply(st, p)
	if err1 != nil {
		return true // not applicable: vacuous
	}
	o2, err2 := spec.Apply(o1.Next, q)
	if err2 != nil {
		return true
	}
	o3, err3 := spec.Apply(st, q)
	if err3 != nil {
		return true
	}
	o4, err4 := spec.Apply(o3.Next, p)
	if err4 != nil {
		return true
	}
	return o1.Result == o4.Result && o2.Result == o3.Result && o2.Next.Key() == o4.Next.Key()
}

func TestIntSetInvert(t *testing.T) {
	st := IntSetSpec{}.Init()
	// Insert into empty: undone by delete.
	undo := IntSetInvert(st, inv(OpInsert, value.Int(3)), value.Unit())
	if len(undo) != 1 || undo[0].Op != OpDelete {
		t.Errorf("invert insert = %v", undo)
	}
	// Insert of an existing element: no compensation.
	out, _ := spec.Apply(st, inv(OpInsert, value.Int(3)))
	if undo := IntSetInvert(out.Next, inv(OpInsert, value.Int(3)), value.Unit()); undo != nil {
		t.Errorf("invert no-op insert = %v", undo)
	}
	// Delete of an existing element: undone by insert.
	if undo := IntSetInvert(out.Next, inv(OpDelete, value.Int(3)), value.Unit()); len(undo) != 1 || undo[0].Op != OpInsert {
		t.Errorf("invert delete = %v", undo)
	}
	// Delete of an absent element: no compensation.
	if undo := IntSetInvert(st, inv(OpDelete, value.Int(3)), value.Unit()); undo != nil {
		t.Errorf("invert no-op delete = %v", undo)
	}
	// Observers: no compensation.
	if undo := IntSetInvert(st, inv(OpMember, value.Int(3)), value.Bool(false)); undo != nil {
		t.Errorf("invert member = %v", undo)
	}
}

// TestIntSetInvertRoundTrip: applying an op then its compensation restores
// the original state key.
func TestIntSetInvertRoundTrip(t *testing.T) {
	f := func(pre []uint8, opSel uint8, argSel uint8) bool {
		st := spec.State(IntSetSpec{}.Init())
		for _, e := range pre {
			out, err := spec.Apply(st, inv(OpInsert, value.Int(int64(e%5))))
			if err != nil {
				return false
			}
			st = out.Next
		}
		var in spec.Invocation
		if opSel%2 == 0 {
			in = inv(OpInsert, value.Int(int64(argSel%5)))
		} else {
			in = inv(OpDelete, value.Int(int64(argSel%5)))
		}
		out, err := spec.Apply(st, in)
		if err != nil {
			return false
		}
		cur := out.Next
		for _, u := range IntSetInvert(st, in, out.Result) {
			o, err := spec.Apply(cur, u)
			if err != nil {
				return false
			}
			cur = o.Next
		}
		return cur.Key() == st.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntSetTypeBundle(t *testing.T) {
	ty := IntSet()
	if ty.Spec.Name() != "intset" {
		t.Errorf("bundle spec name %q", ty.Spec.Name())
	}
	if ty.Conflicts == nil || ty.ConflictsNameOnly == nil || ty.IsWrite == nil || ty.Invert == nil {
		t.Error("bundle has nil members")
	}
	if !ty.IsWrite(OpInsert) || ty.IsWrite(OpMember) {
		t.Error("IsWrite misclassifies")
	}
}
