package adts

import (
	"fmt"
	"sort"
	"strings"

	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// Directory operation names and results.
const (
	OpBind   = "bind"   // bind(k,v) -> ok (rebinds if k is bound)
	OpUnbind = "unbind" // unbind(k) -> ok
	OpLookup = "lookup" // lookup(k) -> bound value | unbound
)

// Unbound is the lookup result for an unbound key.
var Unbound = value.Str("unbound")

// DirectorySpec is a key-value directory with integer keys and values —
// the kind of naming/office-automation object the paper's introduction
// motivates. Operations on distinct keys commute, which is the prototypical
// payoff of argument-aware conflict analysis.
type DirectorySpec struct{}

var _ spec.SerialSpec = DirectorySpec{}

// Name implements spec.SerialSpec.
func (DirectorySpec) Name() string { return "directory" }

// Init implements spec.SerialSpec: initially no key is bound.
func (DirectorySpec) Init() spec.State { return directoryState(nil) }

// directoryState is a sorted slice of bindings (persistent).
type binding struct{ k, v int64 }

type directoryState []binding

var _ spec.State = directoryState(nil)

// Key implements spec.State.
func (s directoryState) Key() string {
	parts := make([]string, len(s))
	for i, b := range s {
		parts[i] = fmt.Sprintf("%d:%d", b.k, b.v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (s directoryState) index(k int64) (int, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].k >= k })
	return i, i < len(s) && s[i].k == k
}

// Step implements spec.State.
func (s directoryState) Step(in spec.Invocation) []spec.Outcome {
	switch in.Op {
	case OpBind:
		k, v, okArg := in.Arg.AsPair()
		if !okArg {
			return nil
		}
		i, present := s.index(k)
		out := make(directoryState, len(s), len(s)+1)
		copy(out, s)
		if present {
			out[i] = binding{k, v}
			return one(ok, out)
		}
		out = append(out, binding{})
		copy(out[i+1:], out[i:len(out)-1])
		out[i] = binding{k, v}
		return one(ok, out)
	case OpUnbind:
		k, okArg := in.Arg.AsInt()
		if !okArg {
			return nil
		}
		i, present := s.index(k)
		if !present {
			return one(ok, s)
		}
		out := make(directoryState, 0, len(s)-1)
		out = append(out, s[:i]...)
		out = append(out, s[i+1:]...)
		return one(ok, out)
	case OpLookup:
		k, okArg := in.Arg.AsInt()
		if !okArg {
			return nil
		}
		i, present := s.index(k)
		if !present {
			return one(Unbound, s)
		}
		return one(value.Int(s[i].v), s)
	default:
		return nil
	}
}

// directoryKeyOf extracts the key an invocation touches.
func directoryKeyOf(in spec.Invocation) (int64, bool) {
	switch in.Op {
	case OpBind:
		k, _, okArg := in.Arg.AsPair()
		return k, okArg
	case OpUnbind, OpLookup:
		return in.Arg.AsInt()
	default:
		return 0, false
	}
}

// DirectoryConflicts: operations on distinct keys commute; on the same key,
// two binds of identical pairs commute, two unbinds commute, and every
// other mutator/observer combination conflicts.
func DirectoryConflicts(p, q spec.Invocation) bool {
	pk, okP := directoryKeyOf(p)
	qk, okQ := directoryKeyOf(q)
	if !okP || !okQ || pk != qk {
		return false
	}
	if p.Op == OpLookup && q.Op == OpLookup {
		return false
	}
	if p.Op == OpBind && q.Op == OpBind {
		return p.Arg != q.Arg
	}
	if p.Op == OpUnbind && q.Op == OpUnbind {
		return false
	}
	return true
}

// DirectoryConflictsNameOnly: without arguments, keys must be assumed
// equal, so any mutator conflicts with everything except a same-named
// idempotent mutator pair is still unsafe for bind (values may differ).
func DirectoryConflictsNameOnly(p, q spec.Invocation) bool {
	pm := DirectoryIsWrite(p.Op)
	qm := DirectoryIsWrite(q.Op)
	if !pm && !qm {
		return false
	}
	if p.Op == OpUnbind && q.Op == OpUnbind {
		return false
	}
	return true
}

// DirectoryIsWrite classifies directory operations.
func DirectoryIsWrite(op string) bool { return op == OpBind || op == OpUnbind }

// DirectoryInvert compensates binds and unbinds by restoring the previous
// binding state of the key.
func DirectoryInvert(pre spec.State, in spec.Invocation, _ value.Value) []spec.Invocation {
	st, okState := pre.(directoryState)
	if !okState {
		return nil
	}
	k, hasKey := directoryKeyOf(in)
	if !hasKey || !DirectoryIsWrite(in.Op) {
		return nil
	}
	i, present := st.index(k)
	switch {
	case present:
		return []spec.Invocation{inv(OpBind, value.Pair(k, st[i].v))}
	case in.Op == OpBind:
		return []spec.Invocation{inv(OpUnbind, value.Int(k))}
	default:
		return nil // unbind of an unbound key changed nothing
	}
}

// Directory returns the full Type bundle for the directory.
func Directory() Type {
	return Type{
		Spec:              DirectorySpec{},
		Conflicts:         DirectoryConflicts,
		ConflictsNameOnly: DirectoryConflictsNameOnly,
		IsWrite:           DirectoryIsWrite,
		Invert:            DirectoryInvert,
	}
}
