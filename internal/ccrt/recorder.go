package ccrt

import (
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"weihl83/internal/histories"
	"weihl83/internal/obs"
)

// Recorder shard observability: contended emits took the slow path into a
// busy shard; History merges tell how often readers pay the merge cost.
var (
	obsEmits     = obs.Default.Counter("ccrt.recorder.emits")
	obsContended = obs.Default.Counter("ccrt.recorder.shard_contention")
	obsMerges    = obs.Default.Counter("ccrt.recorder.merges")
)

// recorderShards is the number of independent event buffers. Power of two;
// sized like obs counter shards: enough to spread this repo's worker counts
// without bloating the merge.
const recorderShards = 8

// stamped is one recorded event plus its global sequence stamp.
type stamped struct {
	seq int64
	e   histories.Event
}

// recShard is one event buffer. The padding rounds the shard up to two
// cache lines so neighbouring shard mutexes never false-share.
type recShard struct {
	mu     sync.Mutex
	events []stamped
	_      [96]byte
}

// Recorder is the sharded history recorder behind Manager.Sink: emitters
// append to one of recorderShards independent buffers, stamping each event
// from one global atomic sequence; History merges the buffers by stamp.
//
// Why the merged order is a valid observation of the computation: protocol
// objects emit events inside their own critical sections, so if event E1's
// Emit returns before event E2's Emit begins — true for any two events
// ordered by the same object's mutex, and for successive events of one
// sequential activity — then E1 drew its stamp before E2 drew its, and the
// merge places E1 first. Events with no such ordering are concurrent, and
// either placement is a legal observation. A History taken concurrently
// with emitters is causally closed for the same reason: an event missing
// from the snapshot has an unfinished Emit, so nothing that
// happened-after it can be in the snapshot either.
type Recorder struct {
	seq    atomic.Int64
	shards [recorderShards]recShard
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// shardIndex picks a shard from the address of a stack variable: goroutine
// stacks live in distinct allocations, so concurrent goroutines spread
// across shards without goroutine-id machinery (same idiom as obs.Counter).
func shardIndex() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	p ^= p >> 9
	return int(p>>4) & (recorderShards - 1)
}

// Emit records one event. Safe for concurrent use; contention is limited to
// emitters that hash to the same shard.
func (r *Recorder) Emit(e histories.Event) {
	s := &r.shards[shardIndex()]
	if !s.mu.TryLock() {
		obsContended.Inc()
		s.mu.Lock()
	}
	n := r.seq.Add(1)
	s.events = append(s.events, stamped{seq: n, e: e})
	s.mu.Unlock()
	obsEmits.Inc()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	total := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		total += len(s.events)
		s.mu.Unlock()
	}
	return total
}

// History returns the recorded events merged into one history by sequence
// stamp. The result is a fresh copy, never aliased by later emits.
func (r *Recorder) History() histories.History {
	obsMerges.Inc()
	var all []stamped
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		all = append(all, s.events...)
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	h := make(histories.History, len(all))
	for i, st := range all {
		h[i] = st.e
	}
	return h
}
