// Package ccrt is the runtime kernel shared by the online
// concurrency-control protocols: the protocol-independent machinery that
// locking (dynamic atomicity), mvcc (static atomicity), and hybridcc
// (hybrid atomicity) all need but that none of them owns.
//
// The paper's §4 presents the three local atomicity properties over one
// vocabulary of events and serial specifications; Malta & Martinez's
// commutativity framework likewise factors protocol-independent ADT
// machinery from the protocol-specific conflict rules. This package is that
// factoring in code. It holds:
//
//   - Replay / StepMatching (replay.go): result-matching replay of recorded
//     calls against a serial specification — the single implementation of
//     the helper previously triplicated across mvcc, hybridcc, and
//     recovery.
//   - Table (table.go): the per-transaction entry table every protocol
//     object keeps, externally locked by the object's own mutex.
//   - WaitSet (waitset.go): per-waiter wakeup channels replacing the
//     close-and-replace generation broadcast, enabling targeted wakeups
//     (wake exactly the doomed transaction) alongside object-local
//     wake-everyone transitions.
//   - Sequencer (seq.go): the ticket protocol that orders hybrid commit
//     installation by commit timestamp without one global lock held across
//     the whole install.
//   - Recorder (recorder.go): the sharded, sequence-stamped event recorder
//     behind Manager.Sink, replacing the single-mutex history append.
//
// Everything here is deliberately free of protocol decisions: guards,
// timestamp rules, and version validation stay in the protocol packages.
package ccrt
