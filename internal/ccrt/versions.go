package ccrt

import (
	"fmt"
	"sort"

	"weihl83/internal/histories"
	"weihl83/internal/spec"
)

// Version is one committed update's section of a version log: the state
// after applying it and every earlier version.
type Version struct {
	TS    histories.Timestamp
	State spec.State
}

// VersionLog is the timestamp-ordered log of committed state snapshots a
// hybrid-atomicity object serves read-only queries from. Externally locked,
// like Table and WaitSet.
type VersionLog struct {
	versions []Version
}

// Append adds a version, enforcing that timestamps arrive strictly
// ascending — the invariant the commit sequencer (or, before it, the global
// commit mutex) exists to provide. A violation is a protocol bug, reported
// for the object to record as corruption.
func (l *VersionLog) Append(ts histories.Timestamp, st spec.State) error {
	if n := len(l.versions); n > 0 && ts <= l.versions[n-1].TS {
		return fmt.Errorf("version timestamp %d not above log head %d", ts, l.versions[n-1].TS)
	}
	l.versions = append(l.versions, Version{TS: ts, State: st})
	return nil
}

// StateBelow returns the state containing exactly the committed updates
// with timestamps strictly below ts, or init if there are none.
func (l *VersionLog) StateBelow(ts histories.Timestamp, init spec.State) spec.State {
	i := sort.Search(len(l.versions), func(i int) bool { return l.versions[i].TS >= ts })
	if i == 0 {
		return init
	}
	return l.versions[i-1].State
}

// Head returns the newest version's state, or init if the log is empty.
func (l *VersionLog) Head(init spec.State) spec.State {
	if n := len(l.versions); n > 0 {
		return l.versions[n-1].State
	}
	return init
}

// Len returns the number of versions.
func (l *VersionLog) Len() int { return len(l.versions) }
