package ccrt

import (
	"fmt"

	"weihl83/internal/spec"
)

// StepMatching applies one recorded call to st, selecting an outcome whose
// result equals the recorded one. Nondeterministic operations are replayed
// with the resolution the object actually chose; when several outcomes
// share the result the first is taken (for the library's types the result
// determines the successor state). An error means the recorded result is
// not achievable — the concurrency-control layer granted an operation whose
// outcome depended on serialization order, which callers surface as a
// protocol-invariant violation rather than silently installing a divergent
// state.
func StepMatching(st spec.State, c spec.Call) (spec.State, error) {
	outs := st.Step(c.Inv)
	for _, out := range outs {
		if out.Result == c.Result {
			return out.Next, nil
		}
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("replay: %s not applicable in state %s", c.Inv, st.Key())
	}
	return nil, fmt.Errorf("replay: %s cannot return recorded %s in state %s", c.Inv, c.Result, st.Key())
}

// Replay applies calls in order via StepMatching, requiring every recorded
// result to be achievable.
func Replay(st spec.State, calls []spec.Call) (spec.State, error) {
	for i, c := range calls {
		next, err := StepMatching(st, c)
		if err != nil {
			return nil, fmt.Errorf("call %d: %w", i, err)
		}
		st = next
	}
	return st, nil
}
