package ccrt_test

import (
	"fmt"
	"sync"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/ccrt"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// TestReplayMatchesRecordedResults: Replay follows the recorded resolution
// of each call and rejects unachievable results.
func TestReplayMatchesRecordedResults(t *testing.T) {
	s := adts.CounterSpec{}
	calls := []spec.Call{
		{Inv: spec.Invocation{Op: adts.OpIncrement, Arg: value.Nil()}, Result: value.Int(1)},
		{Inv: spec.Invocation{Op: adts.OpIncrement, Arg: value.Nil()}, Result: value.Int(2)},
		{Inv: spec.Invocation{Op: adts.OpRead, Arg: value.Nil()}, Result: value.Int(2)},
	}
	st, err := ccrt.Replay(s.Init(), calls)
	if err != nil {
		t.Fatalf("Replay = %v", err)
	}
	if st.Key() != "2" {
		t.Fatalf("replayed state %s, want 2", st.Key())
	}
	bad := []spec.Call{{Inv: spec.Invocation{Op: adts.OpRead, Arg: value.Nil()}, Result: value.Int(99)}}
	if _, err := ccrt.Replay(s.Init(), bad); err == nil {
		t.Fatal("Replay accepted an unachievable recorded result")
	}
}

// TestSemiQueueReplayPicksMatchingOutcome: for a nondeterministic
// operation, StepMatching selects the outcome the object actually chose,
// not just the first one offered.
func TestSemiQueueReplayPicksMatchingOutcome(t *testing.T) {
	s := adts.SemiQueueSpec{}
	st := s.Init()
	var err error
	for _, v := range []int64{10, 20} {
		st, err = ccrt.StepMatching(st, spec.Call{
			Inv:    spec.Invocation{Op: adts.OpEnqueue, Arg: value.Int(v)},
			Result: value.Unit(),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// A semiqueue dequeue may return either element; replay the recording
	// that chose the second.
	st2, err := ccrt.StepMatching(st, spec.Call{
		Inv:    spec.Invocation{Op: adts.OpDequeue, Arg: value.Nil()},
		Result: value.Int(20),
	})
	if err != nil {
		t.Fatalf("StepMatching(dequeue→20) = %v", err)
	}
	// The remaining element must be 10.
	if _, err := ccrt.StepMatching(st2, spec.Call{
		Inv:    spec.Invocation{Op: adts.OpDequeue, Arg: value.Nil()},
		Result: value.Int(10),
	}); err != nil {
		t.Fatalf("second dequeue after matched replay = %v", err)
	}
}

// TestRecorderConcurrentEmitHistory is the -race stress for the sharded
// recorder: concurrent emitters interleaved with History() readers. Each
// emitter's own events must appear in its emission order in every merged
// history, and the final history must contain every event exactly once.
func TestRecorderConcurrentEmitHistory(t *testing.T) {
	r := ccrt.NewRecorder()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: merged snapshots must always be per-activity
	// ordered even while emitters are running.
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := r.History()
				if err := perActivityOrdered(h, perWorker); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := histories.ActivityID(fmt.Sprintf("t%d", w))
			for i := 0; i < perWorker; i++ {
				// Arg encodes the per-worker sequence so order is checkable.
				r.Emit(histories.Invoke("x", a, "op", value.Int(int64(i))))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	h := r.History()
	if len(h) != workers*perWorker {
		t.Fatalf("merged history has %d events, want %d", len(h), workers*perWorker)
	}
	if r.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", r.Len(), workers*perWorker)
	}
	if err := perActivityOrdered(h, perWorker); err != nil {
		t.Fatal(err)
	}
}

// perActivityOrdered checks each activity's events appear in ascending
// per-worker sequence (the emission order of that goroutine).
func perActivityOrdered(h histories.History, perWorker int) error {
	next := make(map[histories.ActivityID]int64)
	for _, e := range h {
		want := next[e.Activity]
		got := e.Arg.MustInt()
		if got != want {
			return fmt.Errorf("activity %s: event %d arrived before %d", e.Activity, got, want)
		}
		next[e.Activity] = want + 1
	}
	return nil
}

// TestSequencerOrdersInstalls: Wait admits ticket holders strictly in
// reservation order, and ReserveWith runs its closure atomically with the
// draw.
func TestSequencerOrdersInstalls(t *testing.T) {
	var s ccrt.Sequencer
	const n = 32
	type draw struct {
		ticket ccrt.Ticket
		ts     int64
	}
	var clockMu sync.Mutex
	var clock int64
	draws := make([]draw, n)
	var wg sync.WaitGroup
	var orderMu sync.Mutex
	var order []int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var d draw
			d.ticket = s.ReserveWith(func() {
				clockMu.Lock()
				clock++
				d.ts = clock
				clockMu.Unlock()
			})
			draws[i] = d
			s.Wait(d.ticket)
			orderMu.Lock()
			order = append(order, d.ts)
			orderMu.Unlock()
			s.Done(d.ticket)
		}(i)
	}
	wg.Wait()
	if len(order) != n {
		t.Fatalf("%d installs, want %d", len(order), n)
	}
	for i, ts := range order {
		if ts != int64(i+1) {
			t.Fatalf("install %d has timestamp %d: installs not in timestamp order %v", i, ts, order)
		}
	}
}

// TestSequencerAbandonUnblocksSuccessors: abandoning a reserved ticket
// (before or after its turn arrives) never wedges later tickets.
func TestSequencerAbandonUnblocksSuccessors(t *testing.T) {
	var s ccrt.Sequencer
	t0 := s.Reserve()
	t1 := s.Reserve()
	t2 := s.Reserve()
	s.Abandon(t1) // abandoned out of turn
	done := make(chan struct{})
	go func() {
		s.Wait(t2)
		s.Done(t2)
		close(done)
	}()
	s.Wait(t0)
	s.Done(t0)
	<-done // t2 proceeds across the abandoned t1
}

// TestWaitSetTargetedWake: Wake signals exactly the named waiter; WakeAll
// signals everyone; redundant signals coalesce in the 1-slot buffer.
func TestWaitSetTargetedWake(t *testing.T) {
	var mu sync.Mutex
	var w ccrt.WaitSet
	chA := make(chan struct{}, 1)
	chB := make(chan struct{}, 1)
	mu.Lock()
	w.Register("a", chA)
	w.Register("b", chB)
	if !w.Wake("a") {
		mu.Unlock()
		t.Fatal("Wake(a) found no waiter")
	}
	w.Wake("a") // coalesces into the latched signal, must not block
	mu.Unlock()
	select {
	case <-chA:
	default:
		t.Fatal("a not woken by targeted Wake")
	}
	select {
	case <-chB:
		t.Fatal("b woken by Wake(a): targeted wake leaked")
	default:
	}
	mu.Lock()
	if w.Wake("missing") {
		t.Error("Wake on an absent waiter reported success")
	}
	w.WakeAll()
	mu.Unlock()
	select {
	case <-chB:
	default:
		t.Fatal("b not woken by WakeAll")
	}
	mu.Lock()
	w.Unregister("a")
	w.Unregister("b")
	if w.Len() != 0 {
		t.Errorf("WaitSet.Len = %d after Unregister, want 0", w.Len())
	}
	mu.Unlock()
}

// TestVersionLogMonotonic: Append enforces strictly ascending timestamps
// and StateBelow picks the right prefix snapshot.
func TestVersionLogMonotonic(t *testing.T) {
	s := adts.CounterSpec{}
	var l ccrt.VersionLog
	st1, _ := ccrt.Replay(s.Init(), []spec.Call{{Inv: spec.Invocation{Op: adts.OpIncrement, Arg: value.Nil()}, Result: value.Int(1)}})
	if err := l.Append(5, st1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(5, st1); err == nil {
		t.Fatal("Append accepted a non-ascending timestamp")
	}
	if got := l.StateBelow(5, s.Init()).Key(); got != "0" {
		t.Errorf("StateBelow(5) = %s, want initial 0 (strictly below)", got)
	}
	if got := l.StateBelow(6, s.Init()).Key(); got != "1" {
		t.Errorf("StateBelow(6) = %s, want 1", got)
	}
	if got := l.Head(s.Init()).Key(); got != "1" {
		t.Errorf("Head = %s, want 1", got)
	}
}

// TestTableDeterministicIteration: SortedIDs is stable regardless of map
// iteration order.
func TestTableDeterministicIteration(t *testing.T) {
	var tb ccrt.Table[int]
	for _, id := range []histories.ActivityID{"t9", "t1", "t5"} {
		*tb.Get(id) = 1
	}
	ids := tb.SortedIDs(nil)
	want := []histories.ActivityID{"t1", "t5", "t9"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SortedIDs = %v, want %v", ids, want)
		}
	}
	tb.Delete("t5")
	if tb.Len() != 2 || tb.Lookup("t5") != nil {
		t.Fatal("Delete left the entry behind")
	}
}
