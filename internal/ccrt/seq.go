package ccrt

import (
	"sync"

	"weihl83/internal/obs"
)

var (
	obsTickets     = obs.Default.Counter("ccrt.seq.tickets")
	obsTicketWaits = obs.Default.Counter("ccrt.seq.waits")
	obsAbandoned   = obs.Default.Counter("ccrt.seq.abandoned")
)

// Ticket is a position in a Sequencer's install order.
type Ticket struct {
	n int64
}

// Sequencer orders a critical phase (hybrid commit installation) without a
// lock held across the whole phase. A transaction Reserves a ticket —
// atomically with drawing its commit timestamp, via ReserveWith — does its
// unordered work (write-ahead logging, coordinator decision), then Waits
// its turn, installs, and calls Done. A transaction that dies after
// reserving calls Abandon so successors are not blocked behind a ticket
// that will never be served.
//
// Because the ticket and the commit timestamp are drawn under one lock,
// ticket order equals timestamp order; because installation happens between
// Wait and Done, installs happen in ticket order. Together: version logs
// grow in timestamp order and the timestamp order stays consistent with
// precedes (§4.3.3), the invariant the old global commit mutex enforced by
// serializing everything.
type Sequencer struct {
	mu        sync.Mutex
	next      int64 // next ticket number to issue
	serving   int64 // lowest ticket not yet retired
	abandoned map[int64]bool
	waiters   map[int64]chan struct{}
}

// Reserve issues the next ticket.
func (s *Sequencer) Reserve() Ticket { return s.ReserveWith(nil) }

// ReserveWith issues the next ticket, running fn under the sequencer lock
// so whatever fn captures (a commit timestamp from a shared clock) is drawn
// atomically with the ticket: ticket order == fn-execution order.
func (s *Sequencer) ReserveWith(fn func()) Ticket {
	s.mu.Lock()
	t := Ticket{n: s.next}
	s.next++
	if fn != nil {
		fn()
	}
	s.mu.Unlock()
	obsTickets.Inc()
	return t
}

// Wait blocks until every earlier ticket has been retired (Done or
// Abandoned). On return the caller holds its turn exclusively until it
// calls Done.
func (s *Sequencer) Wait(t Ticket) {
	s.mu.Lock()
	for s.serving != t.n {
		if s.waiters == nil {
			s.waiters = make(map[int64]chan struct{})
		}
		ch := s.waiters[t.n]
		if ch == nil {
			ch = make(chan struct{})
			s.waiters[t.n] = ch
		}
		s.mu.Unlock()
		obsTicketWaits.Inc()
		<-ch
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// Done retires the caller's ticket after Wait returned, handing the turn to
// the next live ticket.
func (s *Sequencer) Done(t Ticket) {
	s.mu.Lock()
	if s.serving == t.n {
		s.serving++
		s.advanceLocked()
	}
	s.mu.Unlock()
}

// Abandon retires a ticket whose holder will never install (the
// transaction aborted or was orphaned after reserving). Safe to call
// whether or not the ticket's turn has arrived.
func (s *Sequencer) Abandon(t Ticket) {
	obsAbandoned.Inc()
	s.mu.Lock()
	if s.serving == t.n {
		s.serving++
		s.advanceLocked()
	} else {
		if s.abandoned == nil {
			s.abandoned = make(map[int64]bool)
		}
		s.abandoned[t.n] = true
	}
	s.mu.Unlock()
}

// advanceLocked skips over abandoned tickets and wakes the waiter of the
// ticket now being served — a targeted handoff, not a broadcast. Callers
// must hold s.mu.
func (s *Sequencer) advanceLocked() {
	for s.abandoned[s.serving] {
		delete(s.abandoned, s.serving)
		s.serving++
	}
	if ch, ok := s.waiters[s.serving]; ok {
		close(ch)
		delete(s.waiters, s.serving)
	}
}
