package ccrt

import (
	"sort"

	"weihl83/internal/histories"
)

// Table is the per-transaction entry table a protocol object keeps: one
// entry of protocol-specific state E per active transaction. It is
// externally locked — every method must be called with the owning object's
// mutex held — which is what lets one implementation serve protocols with
// very different entry types without its own synchronization cost.
type Table[E any] struct {
	m map[histories.ActivityID]*E
}

// Get returns the transaction's entry, creating a zero one if absent.
func (t *Table[E]) Get(txn histories.ActivityID) *E {
	if t.m == nil {
		t.m = make(map[histories.ActivityID]*E)
	}
	e := t.m[txn]
	if e == nil {
		e = new(E)
		t.m[txn] = e
	}
	return e
}

// Lookup returns the transaction's entry, or nil if it has none.
func (t *Table[E]) Lookup(txn histories.ActivityID) *E {
	return t.m[txn]
}

// Delete removes the transaction's entry.
func (t *Table[E]) Delete(txn histories.ActivityID) {
	delete(t.m, txn)
}

// Len returns the number of active entries.
func (t *Table[E]) Len() int { return len(t.m) }

// SortedIDs returns the active transaction ids in lexical order, optionally
// filtered — deterministic iteration for reproducible protocol decisions
// (guards inspect "the other transactions' pending calls" in a fixed
// order).
func (t *Table[E]) SortedIDs(keep func(histories.ActivityID, *E) bool) []histories.ActivityID {
	ids := make([]histories.ActivityID, 0, len(t.m))
	for id, e := range t.m {
		if keep == nil || keep(id, e) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
