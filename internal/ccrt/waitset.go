package ccrt

import (
	"weihl83/internal/histories"
	"weihl83/internal/obs"
)

// Wakeup observability: how many wake transitions happen and how many
// waiters each one releases. A broadcast scheme shows fan-out equal to the
// whole wait population on every transition; targeted wakeups show fan-out
// one on detector dooms.
var (
	obsWakeups  = obs.Default.Counter("ccrt.wakeups")
	obsWakeFan  = obs.Default.Histogram("ccrt.wakeup.fanout")
	obsTargeted = obs.Default.Counter("ccrt.wakeups.targeted")
)

// WaitSet tracks the transactions blocked at one protocol object, one
// waiter-owned wakeup channel per waiter. Like Table it is externally
// locked: every method must be called with the owning object's mutex held.
//
// The waiter allocates its channel once per blocked invocation (capacity 1)
// and re-registers the same channel on every pass through its wait loop, so
// the hot contention path allocates nothing per iteration. Wake and WakeAll
// signal with a non-blocking send: the 1-slot buffer latches the wakeup, so
// a signal arriving while the waiter is between Register and its receive is
// never lost, and redundant signals coalesce. Registration happens before
// the object's mutex is released and signalling happens under the same
// mutex, so a state transition after the waiter decided to block cannot be
// missed (no lost wakeups). Entries persist across wake signals and are
// removed only by Unregister; a waiter must Unregister (and drain its
// channel before reuse) on every exit from its wait loop.
//
// An activity is a sequential process, so it waits at no more than one
// object at a time; keying waiters by activity id is therefore unambiguous.
type WaitSet struct {
	waiters map[histories.ActivityID]chan struct{}
}

// Register enrolls txn as blocked on ch, which must have capacity 1.
// Re-registering an already-enrolled txn with the same channel is the
// common per-iteration case and is a plain map store.
func (w *WaitSet) Register(txn histories.ActivityID, ch chan struct{}) {
	if w.waiters == nil {
		w.waiters = make(map[histories.ActivityID]chan struct{})
	}
	w.waiters[txn] = ch
}

// Unregister removes txn's waiter entry without signalling it (the waiter
// stopped blocking on its own: grant, timeout, doom). The entry is dropped
// so a later Wake cannot signal a stale channel.
func (w *WaitSet) Unregister(txn histories.ActivityID) {
	delete(w.waiters, txn)
}

// signal latches a wakeup into ch without blocking: if the waiter already
// has an undrained wakeup pending, the new one coalesces with it.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Wake releases exactly txn's waiter, if it is blocked here. Returns
// whether a waiter was signalled.
func (w *WaitSet) Wake(txn histories.ActivityID) bool {
	ch, ok := w.waiters[txn]
	if !ok {
		return false
	}
	signal(ch)
	obsWakeups.Inc()
	obsTargeted.Inc()
	obsWakeFan.Observe(1)
	return true
}

// WakeAll releases every blocked waiter — the object's state changed in a
// way that may unblock any of them (a commit or abort released claims, an
// entry began mutating). Unlike the detector's doom path this fan-out is
// semantically necessary: the object cannot know which guard now admits
// which waiter without re-running them.
func (w *WaitSet) WakeAll() {
	n := len(w.waiters)
	if n == 0 {
		return
	}
	for _, ch := range w.waiters {
		signal(ch)
	}
	obsWakeups.Inc()
	obsWakeFan.Observe(int64(n))
}

// Len returns the number of blocked waiters.
func (w *WaitSet) Len() int { return len(w.waiters) }
