package recovery

import (
	"fmt"
	"sync"

	"weihl83/internal/cc"
	"weihl83/internal/fault"
	"weihl83/internal/histories"
	"weihl83/internal/obs"
	"weihl83/internal/spec"
)

// Observability for stable storage. Byte counts are an estimate of the
// serialized record size (the model keeps records in memory), good enough
// to compare logging volume across runs.
var (
	obsWALAppends = obs.Default.Counter("wal.appends")
	obsWALBytes   = obs.Default.Counter("wal.append.bytes")
	obsWALFailed  = obs.Default.Counter("wal.append.failed")
	obsWALTorn    = obs.Default.Counter("wal.append.torn")
)

// recordBytes estimates a record's serialized size: a fixed header plus a
// per-call overhead.
func recordBytes(r Record) int64 {
	return 64 + 48*int64(len(r.Calls))
}

// RecordKind discriminates write-ahead-log records.
type RecordKind int

// Log record kinds. A transaction's intentions are forced to the log at
// prepare; the commit record is the atomic commit point; installation of
// the intentions into the object states is redone idempotently at restart.
const (
	RecordIntentions RecordKind = iota + 1
	RecordCommit
	RecordAbort
	RecordInstalled
)

// Record is one entry in the write-ahead log.
type Record struct {
	Kind   RecordKind
	Txn    histories.ActivityID
	Object histories.ObjectID // RecordIntentions and RecordInstalled
	Calls  []spec.Call        // RecordIntentions
	TS     histories.Timestamp
	// Torn marks a record whose append failed partway: only a prefix of
	// its calls reached stable storage. Restart discards torn records,
	// modelling checksum-validated log entries.
	Torn bool
}

// ErrWriteFailed reports a failed stable-storage append. It wraps
// cc.ErrUnavailable: a transaction whose log write fails must abort but may
// be retried.
var ErrWriteFailed = fmt.Errorf("recovery: stable-storage write failed: %w", cc.ErrUnavailable)

// Disk is the stable-storage abstraction: everything appended survives a
// Crash; nothing else does. It is safe for concurrent use. An attached
// fault injector can make appends fail or tear (fault.DiskAppendFail,
// fault.DiskAppendTorn).
type Disk struct {
	mu      sync.Mutex
	records []Record
	inj     *fault.Injector
}

// SetInjector attaches a fault injector (nil detaches).
func (d *Disk) SetInjector(in *fault.Injector) {
	d.mu.Lock()
	d.inj = in
	d.mu.Unlock()
}

// Append durably appends a record. A torn append writes a checksummed-away
// prefix of the record's calls and reports failure; a failed append writes
// nothing. Either way the caller must treat the record as not logged.
func (d *Disk) Append(r Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := r
	cp.Calls = append([]spec.Call(nil), r.Calls...)
	if len(cp.Calls) > 0 && d.inj.Fires(fault.DiskAppendTorn) {
		torn := cp
		torn.Calls = cp.Calls[:len(cp.Calls)/2]
		torn.Torn = true
		d.records = append(d.records, torn)
		obsWALTorn.Inc()
		return fmt.Errorf("%w: torn append of %s record for %s", ErrWriteFailed, "intentions", r.Txn)
	}
	if d.inj.Fires(fault.DiskAppendFail) {
		obsWALFailed.Inc()
		return fmt.Errorf("%w: append for %s", ErrWriteFailed, r.Txn)
	}
	d.records = append(d.records, cp)
	obsWALAppends.Inc()
	obsWALBytes.Add(recordBytes(cp))
	return nil
}

// Records returns a deep-copied snapshot of the log: mutating a returned
// record's Calls cannot alias the live log.
func (d *Disk) Records() []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Record, len(d.records))
	copy(out, d.records)
	for i := range out {
		out[i].Calls = append([]spec.Call(nil), out[i].Calls...)
	}
	return out
}

// Len returns the number of records.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.records)
}

// Restart rebuilds the committed state of every object from the log alone,
// replaying the intentions of committed transactions in commit order — the
// redo pass of intentions-list recovery. Transactions with no commit record
// (active or aborted at the crash) contribute nothing, which is exactly the
// recoverability half of atomicity: they appear never to have run. Torn
// records fail their checksum and are discarded.
func Restart(d *Disk, specs map[histories.ObjectID]spec.SerialSpec) (map[histories.ObjectID]spec.State, error) {
	states := make(map[histories.ObjectID]spec.State, len(specs))
	for id, s := range specs {
		states[id] = s.Init()
	}
	recs := d.Records()
	intentions := make(map[histories.ActivityID]map[histories.ObjectID]*IntentionsList)
	for _, r := range recs {
		if r.Torn {
			continue
		}
		switch r.Kind {
		case RecordIntentions:
			m := intentions[r.Txn]
			if m == nil {
				m = make(map[histories.ObjectID]*IntentionsList)
				intentions[r.Txn] = m
			}
			l := &IntentionsList{}
			for _, c := range r.Calls {
				l.Add(c)
			}
			m[r.Object] = l
		case RecordCommit:
			for obj, l := range intentions[r.Txn] {
				base, ok := states[obj]
				if !ok {
					return nil, fmt.Errorf("recovery: log references unknown object %s", obj)
				}
				next, err := l.Apply(base)
				if err != nil {
					return nil, fmt.Errorf("recovery: redo of %s at %s: %w", r.Txn, obj, err)
				}
				states[obj] = next
			}
			delete(intentions, r.Txn)
		case RecordAbort:
			delete(intentions, r.Txn)
		case RecordInstalled:
			// Informational; redo is idempotent because we replay from
			// initial states in log order.
		}
	}
	return states, nil
}
