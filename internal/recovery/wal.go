package recovery

import (
	"fmt"
	"sync"

	"weihl83/internal/cc"
	"weihl83/internal/fault"
	"weihl83/internal/histories"
	"weihl83/internal/obs"
	"weihl83/internal/spec"
)

// Observability for stable storage. Byte counts are an estimate of the
// serialized record size (the model keeps records in memory), good enough
// to compare logging volume across runs.
var (
	obsWALAppends        = obs.Default.Counter("wal.appends")
	obsWALBytes          = obs.Default.Counter("wal.append.bytes")
	obsWALFailed         = obs.Default.Counter("wal.append.failed")
	obsWALBatchSize      = obs.Default.Histogram("wal.append.batch_size")
	obsWALTorn           = obs.Default.Counter("wal.append.torn")
	obsCheckpoints       = obs.Default.Counter("wal.checkpoints")
	obsCheckpointTorn    = obs.Default.Counter("wal.checkpoint.torn")
	obsCheckpointReclaim = obs.Default.Counter("wal.checkpoint.reclaimed_bytes")
)

// recordBytes estimates a record's serialized size: a fixed header plus
// per-call, per-state and per-decision overheads.
func recordBytes(r Record) int64 {
	return 64 + 48*int64(len(r.Calls)) + 96*int64(len(r.States)) + 24*int64(len(r.Decided)) + 16*int64(len(r.Hosted)) + 16*int64(len(r.ReplicaTS))
}

// RecordKind discriminates write-ahead-log records.
type RecordKind int

// Log record kinds. A transaction's intentions are forced to the log at
// prepare; the commit record is the atomic commit point; installation of
// the intentions into the object states is redone idempotently at restart.
// A checkpoint record snapshots the committed states (and the committed
// transaction ids) so the log prefix it summarises can be compacted away.
const (
	RecordIntentions RecordKind = iota + 1
	RecordCommit
	RecordAbort
	RecordInstalled
	RecordCheckpoint
)

// MigrateDir marks an intentions record as one half of a transactional
// shard migration: Out at the object's old home (commit drops hosting), In
// at its new home (commit adopts the copied state as the object's
// committed baseline and takes over hosting). A migration is an ordinary
// transaction — its halves prepare, force intentions, and resolve through
// the same 2PC/termination protocol as any other — so a crash mid-move
// recovers or presumed-aborts with the object still singly-homed.
type MigrateDir int

// Migration directions for Record.Migrate.
const (
	MigrateNone MigrateDir = iota
	MigrateOut
	MigrateIn
	// ReplicaIn marks a replica-group record at a follower site: a seed
	// (States set) adopts the shipped baseline as the follower's committed
	// copy, a delivery (Calls set) replays the shipped calls onto it.
	// Unlike MigrateIn, ReplicaIn never touches hosting — the leader stays
	// the object's single home and the follower only serves snapshot
	// reads. Each ReplicaIn intentions record is paired with its own
	// commit record (the follower's local WAL protocol), so an
	// uncommitted delivery vanishes at restart and bounded-retry
	// redelivery re-logs it; restart's in-doubt resolution must skip
	// these records — they are not transaction halves and have no
	// coordinator to consult.
	ReplicaIn
)

// Record is one entry in the write-ahead log.
type Record struct {
	Kind   RecordKind
	Txn    histories.ActivityID
	Object histories.ObjectID // RecordIntentions and RecordInstalled
	Calls  []spec.Call        // RecordIntentions
	TS     histories.Timestamp
	// Migrate marks a migration half (RecordIntentions): Out at the old
	// home, In at the new. A committed MigrateIn adopts States[Object] as
	// the object's committed baseline; a committed MigrateOut removes the
	// object from the site's committed state.
	Migrate MigrateDir
	// RingV is the placement version the migration installs when it
	// commits (RecordIntentions with Migrate set).
	RingV uint64
	// Torn marks a record whose append failed partway: only a prefix of
	// its calls reached stable storage. Restart discards torn records,
	// modelling checksum-validated log entries.
	Torn bool
	// Participants names the transaction's participant sites
	// (RecordIntentions, distributed mode): the peers an in-doubt
	// recovery polls during cooperative termination.
	Participants []string
	// States is a checkpoint's committed-state snapshot, one immutable
	// spec.State per object (RecordCheckpoint).
	States map[histories.ObjectID]spec.State
	// Decided is a checkpoint's set of transactions with a durable commit
	// outcome (RecordCheckpoint). Compaction drops their commit records,
	// so peer-outcome queries answer from here instead. Aborted
	// transactions are deliberately absent: presumed abort makes their
	// records forgettable.
	Decided map[histories.ActivityID]bool
	// Hosted is a checkpoint's hosting snapshot (RecordCheckpoint, sites
	// with migration support): which objects the site was home to at
	// checkpoint time. Compaction drops committed migration records, so
	// hosting must be re-derivable from the checkpoint alone. Nil on
	// checkpoints taken without hosting awareness.
	Hosted map[histories.ObjectID]bool
	// ReplicaTS is a checkpoint's replica watermark (RecordCheckpoint):
	// per object, the highest delivery timestamp among the committed
	// ReplicaIn records the checkpoint's States snapshot folds in.
	// Compaction drops those records, so a recovering follower derives
	// its snapshot-read floor from here — reads below the floor would
	// silently include later effects already merged into the baseline.
	ReplicaTS map[histories.ObjectID]histories.Timestamp
}

// clone deep-copies a record so callers can never alias the live log.
func (r Record) clone() Record {
	cp := r
	cp.Calls = append([]spec.Call(nil), r.Calls...)
	if r.Participants != nil {
		cp.Participants = append([]string(nil), r.Participants...)
	}
	if r.States != nil {
		cp.States = make(map[histories.ObjectID]spec.State, len(r.States))
		for id, st := range r.States {
			cp.States[id] = st // spec.State is immutable
		}
	}
	if r.Decided != nil {
		cp.Decided = make(map[histories.ActivityID]bool, len(r.Decided))
		for txn, v := range r.Decided {
			cp.Decided[txn] = v
		}
	}
	if r.Hosted != nil {
		cp.Hosted = make(map[histories.ObjectID]bool, len(r.Hosted))
		for id, v := range r.Hosted {
			cp.Hosted[id] = v
		}
	}
	if r.ReplicaTS != nil {
		cp.ReplicaTS = make(map[histories.ObjectID]histories.Timestamp, len(r.ReplicaTS))
		for id, ts := range r.ReplicaTS {
			cp.ReplicaTS[id] = ts
		}
	}
	return cp
}

// ErrWriteFailed reports a failed stable-storage append. It wraps
// cc.ErrUnavailable: a transaction whose log write fails must abort but may
// be retried.
var ErrWriteFailed = fmt.Errorf("recovery: stable-storage write failed: %w", cc.ErrUnavailable)

// Disk is the stable-storage abstraction: everything appended survives a
// Crash; nothing else does. It is safe for concurrent use. An attached
// fault injector can make appends fail or tear (fault.DiskAppendFail,
// fault.DiskAppendTorn).
type Disk struct {
	mu      sync.Mutex
	records []Record
	inj     *fault.Injector
}

// SetInjector attaches a fault injector (nil detaches).
func (d *Disk) SetInjector(in *fault.Injector) {
	d.mu.Lock()
	d.inj = in
	d.mu.Unlock()
}

// Append durably appends a record. A torn append writes a checksummed-away
// prefix of the record's calls and reports failure; a failed append writes
// nothing. Either way the caller must treat the record as not logged.
func (d *Disk) Append(r Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appendLocked(r)
}

// appendLocked is Append under d.mu: one record, with the torn/failed
// fault points applied.
func (d *Disk) appendLocked(r Record) error {
	cp := r.clone()
	if len(cp.Calls) > 0 && d.inj.Fires(fault.DiskAppendTorn) {
		torn := cp
		torn.Calls = cp.Calls[:len(cp.Calls)/2]
		torn.Torn = true
		d.records = append(d.records, torn)
		obsWALTorn.Inc()
		return fmt.Errorf("%w: torn append of %s record for %s", ErrWriteFailed, "intentions", r.Txn)
	}
	if d.inj.Fires(fault.DiskAppendFail) {
		obsWALFailed.Inc()
		return fmt.Errorf("%w: append for %s", ErrWriteFailed, r.Txn)
	}
	d.records = append(d.records, cp)
	obsWALAppends.Inc()
	obsWALBytes.Add(recordBytes(cp))
	return nil
}

// AppendBatch appends several transactions' record groups under one
// stable-storage acquisition — the group-commit entry point: a commit
// leader hands in one group per follower (that transaction's intentions
// records followed by its commit record) and the whole batch goes to disk
// as one forced write.
//
// Fault semantics are exactly those of per-group sequences of Append: the
// torn/failed fault points are applied to every record individually, and a
// fault inside group i fails group i alone — its earlier records stay in
// the log without a commit record, precisely the state a solo committer
// would leave, so Restart ignores them — while later groups still append.
// errs[i] is nil iff group i's records are all durably logged.
func (d *Disk) AppendBatch(groups [][]Record) (errs []error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	errs = make([]error, len(groups))
	obsWALBatchSize.Observe(int64(len(groups)))
	for i, group := range groups {
		for _, r := range group {
			if err := d.appendLocked(r); err != nil {
				errs[i] = err
				break
			}
		}
	}
	return errs
}

// Records returns a deep-copied snapshot of the log: mutating a returned
// record's Calls cannot alias the live log.
func (d *Disk) Records() []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Record, len(d.records))
	for i := range d.records {
		out[i] = d.records[i].clone()
	}
	return out
}

// Len returns the number of records.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.records)
}

// Restart rebuilds the committed state of every object from the log alone,
// replaying the intentions of committed transactions in intentions order —
// the redo pass of intentions-list recovery. Transactions with no commit
// record (active or aborted at the crash) contribute nothing, which is
// exactly the recoverability half of atomicity: they appear never to have
// run. Torn records fail their checksum and are discarded. A non-torn
// checkpoint record resets the replay to its snapshot, so a compacted log
// replays as checkpoint + suffix; a torn checkpoint is skipped and the
// replay falls back to the records themselves.
//
// Intentions order — not commit-record order — is the order that matches
// the recorded results. A commit record can land in the log long after the
// decision it witnesses: a site tolerates a failed commit-record append
// (the coordinator's log holds the outcome) and the record is re-created
// later by the cooperative termination protocol, after transactions that
// live ran after this one. Intentions positions are immune to that drift,
// and they respect every result dependency: under the locking protocols a
// transaction only observes another's effects once it has committed, so a
// dependent transaction's intentions are always logged after the
// transaction it depends on; concurrently-prepared transactions hold
// non-conflicting locks, whose recorded results replay validly in either
// order.
func Restart(d Backend, specs map[histories.ObjectID]spec.SerialSpec) (map[histories.ObjectID]spec.State, error) {
	return replay(d.Records(), specs)
}

// RestartHosted is Restart for sites that host a moving set of objects: it
// additionally rebuilds which objects the site is home to. initialHosted
// names the objects the site was seeded with (before any migration); nil
// means every object in specs. Committed migrate-in records take hosting
// (and adopt the copied state baseline), committed migrate-out records
// drop it, and a checkpoint's Hosted snapshot re-bases the derivation the
// way its States snapshot re-bases state replay.
func RestartHosted(d Backend, specs map[histories.ObjectID]spec.SerialSpec, initialHosted map[histories.ObjectID]bool) (map[histories.ObjectID]spec.State, map[histories.ObjectID]bool, error) {
	return replayHosted(d.Records(), specs, initialHosted)
}

// replay is Restart's core over an explicit record sequence.
func replay(recs []Record, specs map[histories.ObjectID]spec.SerialSpec) (map[histories.ObjectID]spec.State, error) {
	states, _, err := replayHosted(recs, specs, nil)
	return states, err
}

// replayHosted is the replay core, also deriving hosting.
func replayHosted(recs []Record, specs map[histories.ObjectID]spec.SerialSpec, initialHosted map[histories.ObjectID]bool) (map[histories.ObjectID]spec.State, map[histories.ObjectID]bool, error) {
	states := make(map[histories.ObjectID]spec.State, len(specs))
	for id, s := range specs {
		states[id] = s.Init()
	}
	hosted := make(map[histories.ObjectID]bool, len(specs))
	if initialHosted == nil {
		for id := range specs {
			hosted[id] = true
		}
	} else {
		for id, h := range initialHosted {
			hosted[id] = h
		}
	}
	// Pass 1: every transaction's durable fate. A commit record or a
	// checkpoint Decided entry wins over an abort record: a durable commit
	// is irrevocable, and duplicate outcome records (handler racing the
	// in-doubt resolver) are benign.
	committed := make(map[histories.ActivityID]bool)
	for _, r := range recs {
		if r.Torn {
			continue
		}
		switch r.Kind {
		case RecordCommit:
			committed[r.Txn] = true
		case RecordCheckpoint:
			for txn := range r.Decided {
				committed[txn] = true
			}
		}
	}
	// Pass 2: redo committed intentions at their own log positions.
	applied := make(map[histories.ActivityID]map[histories.ObjectID]bool)
	for _, r := range recs {
		if r.Torn {
			continue
		}
		switch r.Kind {
		case RecordIntentions:
			if !committed[r.Txn] || applied[r.Txn][r.Object] {
				continue
			}
			if applied[r.Txn] == nil {
				applied[r.Txn] = make(map[histories.ObjectID]bool)
			}
			switch r.Migrate {
			case MigrateIn:
				// The committed migration made the copied baseline this
				// site's committed state for the object and took hosting.
				// Client intentions on the object at this site are always
				// logged after the migrate-in they depend on, so position
				// order replays them onto the adopted baseline.
				if st, ok := r.States[r.Object]; ok {
					states[r.Object] = st
				}
				hosted[r.Object] = true
				applied[r.Txn][r.Object] = true
				continue
			case MigrateOut:
				// The object left this site: its committed state lives at
				// the new home now.
				delete(states, r.Object)
				hosted[r.Object] = false
				applied[r.Txn][r.Object] = true
				continue
			case ReplicaIn:
				// Replica-group record at a follower. A seed adopts the
				// shipped baseline; a delivery falls through to ordinary
				// call replay onto it. Hosting is untouched either way —
				// the follower's copy is a read replica, not a home.
				if st, ok := r.States[r.Object]; ok {
					states[r.Object] = st
					applied[r.Txn][r.Object] = true
					continue
				}
			}
			base, ok := states[r.Object]
			if !ok {
				return nil, nil, fmt.Errorf("recovery: log references unknown object %s", r.Object)
			}
			l := &IntentionsList{}
			for _, c := range r.Calls {
				l.Add(c)
			}
			next, err := l.Apply(base)
			if err != nil {
				return nil, nil, fmt.Errorf("recovery: redo of %s at %s: %w", r.Txn, r.Object, err)
			}
			states[r.Object] = next
			applied[r.Txn][r.Object] = true
		case RecordInstalled:
			// Informational; redo is idempotent because we replay from
			// initial states in log order.
		case RecordCheckpoint:
			// The snapshot summarises everything before it: adopt its
			// states (objects created after the checkpoint keep their
			// initial state, and an object the snapshot omits because it
			// had migrated out is dropped). Any transaction undecided at
			// checkpoint time had its intentions re-appended after the
			// checkpoint record by compaction, so they still replay onto
			// the snapshot.
			for id, st := range r.States {
				if _, known := states[id]; known {
					states[id] = st
				} else if r.Hosted[id] {
					// A migrated-in object absent from the caller's
					// initial set: the snapshot is its baseline.
					states[id] = st
				}
			}
			if r.Hosted != nil {
				for id, h := range r.Hosted {
					hosted[id] = h
					if !h {
						// A non-hosted object whose state the snapshot still
						// carries is a follower copy (replica group): keep
						// it — post-checkpoint deliveries replay onto it. A
						// plain migrated-out object has no snapshot state
						// and is dropped.
						if _, keep := r.States[id]; !keep {
							delete(states, id)
						}
					}
				}
			}
		}
	}
	return states, hosted, nil
}

// Checkpoint writes a checkpoint record — the committed-state snapshot
// obtained by replaying the current log plus the set of durably committed
// transactions — and compacts the log down to checkpoint + the intentions
// of still-undecided transactions. It returns the estimated bytes
// reclaimed. Under fault.DiskCheckpointTorn the checkpoint record tears:
// it is appended torn (so restart ignores it), nothing is compacted, and
// the full log remains the source of truth.
func (d *Disk) Checkpoint(specs map[histories.ObjectID]spec.SerialSpec) (int64, error) {
	return d.checkpoint(specs, nil, false)
}

// CheckpointHosted is Checkpoint for sites with migration support: the
// checkpoint record additionally snapshots which objects the site hosts
// (derived from initialHosted plus the log's committed migrations), so
// hosting survives the compaction that drops the migration records
// themselves. initialHosted has RestartHosted's semantics.
func (d *Disk) CheckpointHosted(specs map[histories.ObjectID]spec.SerialSpec, initialHosted map[histories.ObjectID]bool) (int64, error) {
	return d.checkpoint(specs, initialHosted, true)
}

func (d *Disk) checkpoint(specs map[histories.ObjectID]spec.SerialSpec, initialHosted map[histories.ObjectID]bool, withHosted bool) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Snapshot by replaying the log under the disk mutex: the states are
	// exactly what Restart would rebuild at this instant, so the snapshot
	// can never tear across a multi-object installation.
	states, hosted, err := replayHosted(d.records, specs, initialHosted)
	if err != nil {
		return 0, fmt.Errorf("recovery: checkpoint replay: %w", err)
	}
	cp := Record{Kind: RecordCheckpoint, States: states, Decided: make(map[histories.ActivityID]bool)}
	if withHosted {
		cp.Hosted = hosted
	}
	undecided := make(map[histories.ActivityID]bool)
	for _, r := range d.records {
		if r.Torn {
			continue
		}
		switch r.Kind {
		case RecordIntentions:
			undecided[r.Txn] = true
		case RecordCommit:
			delete(undecided, r.Txn)
			cp.Decided[r.Txn] = true
		case RecordAbort:
			delete(undecided, r.Txn)
		case RecordCheckpoint:
			for txn := range r.Decided {
				cp.Decided[txn] = true
			}
		}
	}
	// Replica watermark: the snapshot folds in every committed ReplicaIn
	// delivery, and compaction is about to drop those records, so the
	// checkpoint must carry the per-object high-water timestamp forward
	// (its own plus any prior checkpoint's).
	replicaTS := make(map[histories.ObjectID]histories.Timestamp)
	for _, r := range d.records {
		if r.Torn {
			continue
		}
		switch r.Kind {
		case RecordIntentions:
			if r.Migrate == ReplicaIn && cp.Decided[r.Txn] && r.TS > replicaTS[r.Object] {
				replicaTS[r.Object] = r.TS
			}
		case RecordCheckpoint:
			for id, ts := range r.ReplicaTS {
				if ts > replicaTS[id] {
					replicaTS[id] = ts
				}
			}
		}
	}
	if len(replicaTS) > 0 {
		cp.ReplicaTS = replicaTS
	}
	if d.inj.Fires(fault.DiskCheckpointTorn) {
		torn := cp.clone()
		torn.States = nil // the snapshot never made it to stable storage
		torn.Decided = nil
		torn.Hosted = nil
		torn.ReplicaTS = nil
		torn.Torn = true
		d.records = append(d.records, torn)
		obsCheckpointTorn.Inc()
		return 0, fmt.Errorf("%w: torn checkpoint", ErrWriteFailed)
	}
	var before, after int64
	for _, r := range d.records {
		before += recordBytes(r)
	}
	compacted := []Record{cp}
	for _, r := range d.records {
		if !r.Torn && r.Kind == RecordIntentions && undecided[r.Txn] {
			compacted = append(compacted, r)
		}
	}
	d.records = compacted
	for _, r := range d.records {
		after += recordBytes(r)
	}
	reclaimed := before - after
	if reclaimed < 0 {
		reclaimed = 0
	}
	obsCheckpoints.Inc()
	obsCheckpointReclaim.Add(reclaimed)
	obsWALAppends.Inc()
	obsWALBytes.Add(recordBytes(cp))
	return reclaimed, nil
}

// ReplicaWatermarks scans the log for the per-object replica delivery
// floor: the highest timestamp among committed ReplicaIn records, merged
// with any checkpoint's carried-forward ReplicaTS. A follower recovering
// from this log must refuse snapshot reads below the floor — every
// delivery at or below it is already folded into the replayed state, so a
// lower-timestamped read would anachronistically observe later effects.
func ReplicaWatermarks(d Backend) map[histories.ObjectID]histories.Timestamp {
	recs := d.Records()
	committed := make(map[histories.ActivityID]bool)
	for _, r := range recs {
		if r.Torn {
			continue
		}
		switch r.Kind {
		case RecordCommit:
			committed[r.Txn] = true
		case RecordCheckpoint:
			for txn := range r.Decided {
				committed[txn] = true
			}
		}
	}
	marks := make(map[histories.ObjectID]histories.Timestamp)
	for _, r := range recs {
		if r.Torn {
			continue
		}
		switch r.Kind {
		case RecordIntentions:
			if r.Migrate == ReplicaIn && committed[r.Txn] && r.TS > marks[r.Object] {
				marks[r.Object] = r.TS
			}
		case RecordCheckpoint:
			for id, ts := range r.ReplicaTS {
				if ts > marks[id] {
					marks[id] = ts
				}
			}
		}
	}
	return marks
}
