package recovery

import (
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/fault"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func depositGroup(txn histories.ActivityID, obj histories.ObjectID, amount int64) []Record {
	return []Record{
		{Kind: RecordIntentions, Txn: txn, Object: obj,
			Calls: []spec.Call{call(adts.OpDeposit, value.Int(amount), value.Unit())}},
		{Kind: RecordCommit, Txn: txn},
	}
}

func accountSpecs() map[histories.ObjectID]spec.SerialSpec {
	return map[histories.ObjectID]spec.SerialSpec{"a": adts.AccountSpec{}}
}

// TestAppendBatchAllDurable: a fault-free batch logs every group and
// Restart replays all of them.
func TestAppendBatchAllDurable(t *testing.T) {
	var d Disk
	errs := d.AppendBatch([][]Record{
		depositGroup("t1", "a", 1),
		depositGroup("t2", "a", 2),
		depositGroup("t3", "a", 4),
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
	}
	if d.Len() != 6 {
		t.Fatalf("log has %d records, want 6", d.Len())
	}
	states, err := Restart(&d, accountSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 7 {
		t.Errorf("restart balance %d, want 7", got)
	}
}

// TestAppendBatchFailIsolatesGroup: a clean append failure fails only the
// group containing the faulted record; batch mates still commit durably,
// and Restart sees nothing of the failed transaction.
func TestAppendBatchFailIsolatesGroup(t *testing.T) {
	var d Disk
	inj := fault.New(7)
	inj.Enable(fault.DiskAppendFail, fault.Rule{Prob: 1, Limit: 1})
	d.SetInjector(inj)

	errs := d.AppendBatch([][]Record{
		depositGroup("t1", "a", 1), // first record eats the single activation
		depositGroup("t2", "a", 2),
		depositGroup("t3", "a", 4),
	})
	if errs[0] == nil {
		t.Fatal("faulted group reported success")
	}
	if errs[1] != nil || errs[2] != nil {
		t.Fatalf("fault leaked across groups: %v %v", errs[1], errs[2])
	}
	states, err := Restart(&d, accountSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 6 {
		t.Errorf("restart balance %d, want 6 (t2+t3 only)", got)
	}
}

// TestAppendBatchTornIsolatesGroup: a torn intentions record leaves a
// checksummed-away prefix that Restart discards, exactly as a solo Append
// would; the rest of the batch is unaffected.
func TestAppendBatchTornIsolatesGroup(t *testing.T) {
	var d Disk
	inj := fault.New(7)
	inj.Enable(fault.DiskAppendTorn, fault.Rule{Prob: 1, Limit: 1})
	d.SetInjector(inj)

	errs := d.AppendBatch([][]Record{
		depositGroup("t1", "a", 1), // its intentions record tears
		depositGroup("t2", "a", 2),
	})
	if errs[0] == nil {
		t.Fatal("torn group reported success")
	}
	if errs[1] != nil {
		t.Fatalf("tear leaked across groups: %v", errs[1])
	}
	// The torn prefix is physically present but must be ignored at restart.
	recs := d.Records()
	if !recs[0].Torn {
		t.Fatal("expected a torn record at position 0")
	}
	states, err := Restart(&d, accountSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 2 {
		t.Errorf("restart balance %d, want 2 (t2 only)", got)
	}
}
