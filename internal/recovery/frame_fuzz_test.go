package recovery

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// fuzzSegment builds a small valid segment: a few committed deposits plus
// a checkpoint-shaped record, the full frame vocabulary.
func fuzzSegment(tb testing.TB) []byte {
	specs := checkpointSpecs()
	recs := []Record{
		{Kind: RecordIntentions, Txn: "t1", Object: "a",
			Calls: []spec.Call{call(adts.OpDeposit, value.Int(5), value.Unit())}},
		{Kind: RecordCommit, Txn: "t1", TS: 7},
		{Kind: RecordIntentions, Txn: "t2", Object: "b", Participants: []string{"A", "B"},
			Calls: []spec.Call{call(adts.OpDeposit, value.Int(3), value.Unit())}},
		{Kind: RecordCheckpoint,
			States:  map[histories.ObjectID]spec.State{"a": adts.AccountState(5)},
			Decided: map[histories.ActivityID]bool{"t1": true},
			Hosted:  map[histories.ObjectID]bool{"a": true, "b": false}},
		{Kind: RecordIntentions, Txn: "t3", Object: "a",
			Calls: []spec.Call{call(adts.OpDeposit, value.Int(2), value.Unit())}},
		{Kind: RecordCommit, Txn: "t3"},
	}
	var buf []byte
	for _, r := range recs {
		payload, err := encodeRecord(r, specs)
		if err != nil {
			tb.Fatal(err)
		}
		buf = appendFrame(buf, payload)
	}
	return buf
}

// FuzzFrameDecode throws arbitrary mutations and truncations of a valid
// segment at the recovery scan. The contract: every input yields either a
// clean open (with the torn tail trimmed) or ErrCorrupt — never a panic,
// and never a silent misparse that acknowledges frames beyond the first
// bad one.
func FuzzFrameDecode(f *testing.F) {
	valid := fuzzSegment(f)
	f.Add(valid, 0, byte(0))
	f.Add(valid, 11, byte(0xff))                   // flip inside the first frame
	f.Add(valid[:len(valid)-5], 0, byte(0))        // torn tail
	f.Add(valid[:7], 0, byte(0))                   // short header
	f.Add([]byte{}, 0, byte(0))                    // empty segment
	f.Add(bytes.Repeat([]byte{0}, 64), 3, byte(9)) // zero garbage

	specs := checkpointSpecs()
	f.Fuzz(func(t *testing.T, data []byte, pos int, delta byte) {
		mutated := append([]byte(nil), data...)
		if len(mutated) > 0 {
			mutated[abs(pos)%len(mutated)] ^= delta
		}

		// Layer 1: the frame scan must terminate and stay in bounds.
		payloads, valid, torn := scanFrames(mutated)
		if valid < 0 || valid > len(mutated) {
			t.Fatalf("scanFrames valid offset %d out of bounds (len %d)", valid, len(mutated))
		}
		if !torn && valid != len(mutated) {
			t.Fatalf("scanFrames reported clean but consumed %d of %d bytes", valid, len(mutated))
		}
		// Every accepted payload must decode or be rejected as corrupt —
		// never panic.
		for _, p := range payloads {
			if _, err := decodeRecord(p, specs); err != nil && !errors.Is(err, ErrCorrupt) {
				// Non-corrupt decode errors (unknown object in a mutated
				// checkpoint) are configuration errors; also acceptable.
				_ = err
			}
		}

		// Layer 2: a full open of the mutated bytes as a final segment
		// must either succeed (torn tail trimmed) or fail with an error —
		// never panic, never hang.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs})
		if err != nil {
			return
		}
		// An open that succeeded must have physically repaired the
		// segment: a second open sees a clean log with the same records.
		n := w.Len()
		w.Close()
		w2, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs})
		if err != nil {
			t.Fatalf("reopen after successful open failed: %v", err)
		}
		defer w2.Close()
		if w2.Len() != n {
			t.Fatalf("reopen changed record count: %d then %d", n, w2.Len())
		}
	})
}

func abs(n int) int {
	if n < 0 {
		if n == -n { // math.MinInt
			return 0
		}
		return -n
	}
	return n
}
