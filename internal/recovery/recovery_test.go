package recovery

import (
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func call(op string, arg, res value.Value) spec.Call {
	return spec.Call{Inv: spec.Invocation{Op: op, Arg: arg}, Result: res}
}

func TestIntentionsApply(t *testing.T) {
	var l IntentionsList
	l.Add(call(adts.OpDeposit, value.Int(10), value.Unit()))
	l.Add(call(adts.OpWithdraw, value.Int(3), value.Unit()))
	st, err := l.Apply(adts.AccountSpec{}.Init())
	if err != nil {
		t.Fatal(err)
	}
	if st.(adts.AccountState).Balance() != 7 {
		t.Errorf("balance %d, want 7", st.(adts.AccountState).Balance())
	}
	if l.Len() != 2 {
		t.Errorf("len %d", l.Len())
	}
}

func TestIntentionsApplyDetectsDivergence(t *testing.T) {
	var l IntentionsList
	// Recorded ok, but replay from 0 yields insufficient_funds.
	l.Add(call(adts.OpWithdraw, value.Int(3), value.Unit()))
	if _, err := l.Apply(adts.AccountSpec{}.Init()); err == nil {
		t.Error("result divergence not detected")
	}
	// An inapplicable invocation is also an error.
	var l2 IntentionsList
	l2.Add(call("bogus", value.Nil(), value.Nil()))
	if _, err := l2.Apply(adts.AccountSpec{}.Init()); err == nil {
		t.Error("inapplicable intention not detected")
	}
	if _, err := l2.View(adts.AccountSpec{}.Init()); err == nil {
		t.Error("inapplicable intention not detected by View")
	}
}

func TestIntentionsViewVerifiesResults(t *testing.T) {
	var l IntentionsList
	l.Add(call(adts.OpDeposit, value.Int(5), value.Unit()))
	st, err := l.View(adts.AccountSpec{}.Init())
	if err != nil {
		t.Fatal(err)
	}
	if st.(adts.AccountState).Balance() != 5 {
		t.Errorf("view balance %d", st.(adts.AccountState).Balance())
	}
	// A recorded result the specification cannot produce is an error.
	var bad IntentionsList
	bad.Add(call(adts.OpDeposit, value.Int(5), value.Str("whatever")))
	if _, err := bad.View(adts.AccountSpec{}.Init()); err == nil {
		t.Error("unachievable recorded result accepted")
	}
}

func TestIntentionsClone(t *testing.T) {
	var l IntentionsList
	l.Add(call(adts.OpDeposit, value.Int(5), value.Unit()))
	c := l.Clone()
	c.Add(call(adts.OpDeposit, value.Int(5), value.Unit()))
	if l.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone aliases: %d/%d", l.Len(), c.Len())
	}
}

func TestUndoLogReverses(t *testing.T) {
	st := spec.State(adts.AccountState(0))
	var u UndoLog
	apply := func(op string, n int64) {
		t.Helper()
		in := spec.Invocation{Op: op, Arg: value.Int(n)}
		out, err := spec.Apply(st, in)
		if err != nil {
			t.Fatal(err)
		}
		u.Record(adts.AccountInvert(st, in, out.Result))
		st = out.Next
	}
	apply(adts.OpDeposit, 10)
	apply(adts.OpWithdraw, 4)
	apply(adts.OpDeposit, 1)
	if u.Len() != 3 {
		t.Errorf("undo frames %d", u.Len())
	}
	restored, err := u.Undo(st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.(adts.AccountState).Balance() != 0 {
		t.Errorf("restored balance %d, want 0", restored.(adts.AccountState).Balance())
	}
}

func TestUndoLogError(t *testing.T) {
	var u UndoLog
	u.Record([]spec.Invocation{{Op: "bogus"}})
	if _, err := u.Undo(adts.AccountSpec{}.Init()); err == nil {
		t.Error("bad compensation not detected")
	}
}

func newDiskWith(records ...Record) *Disk {
	d := &Disk{}
	for _, r := range records {
		d.Append(r)
	}
	return d
}

func TestRestartRedoesCommittedOnly(t *testing.T) {
	specs := map[histories.ObjectID]spec.SerialSpec{
		"x": adts.IntSetSpec{},
		"y": adts.AccountSpec{},
	}
	d := newDiskWith(
		// t1 commits across two objects.
		Record{Kind: RecordIntentions, Txn: "t1", Object: "x", Calls: []spec.Call{call(adts.OpInsert, value.Int(3), value.Unit())}},
		Record{Kind: RecordIntentions, Txn: "t1", Object: "y", Calls: []spec.Call{call(adts.OpDeposit, value.Int(10), value.Unit())}},
		Record{Kind: RecordCommit, Txn: "t1"},
		// t2 prepares but crashes before its commit record: must vanish.
		Record{Kind: RecordIntentions, Txn: "t2", Object: "y", Calls: []spec.Call{call(adts.OpWithdraw, value.Int(5), value.Unit())}},
		// t3 aborts explicitly.
		Record{Kind: RecordIntentions, Txn: "t3", Object: "x", Calls: []spec.Call{call(adts.OpInsert, value.Int(9), value.Unit())}},
		Record{Kind: RecordAbort, Txn: "t3"},
	)
	states, err := Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	if states["x"].Key() != "{3}" {
		t.Errorf("x after restart: %s, want {3}", states["x"].Key())
	}
	if states["y"].(adts.AccountState).Balance() != 10 {
		t.Errorf("y after restart: %d, want 10", states["y"].(adts.AccountState).Balance())
	}
}

func TestRestartSequentialCommitsCompose(t *testing.T) {
	specs := map[histories.ObjectID]spec.SerialSpec{"y": adts.AccountSpec{}}
	d := newDiskWith(
		Record{Kind: RecordIntentions, Txn: "t1", Object: "y", Calls: []spec.Call{call(adts.OpDeposit, value.Int(10), value.Unit())}},
		Record{Kind: RecordCommit, Txn: "t1"},
		Record{Kind: RecordIntentions, Txn: "t2", Object: "y", Calls: []spec.Call{call(adts.OpWithdraw, value.Int(4), value.Unit())}},
		Record{Kind: RecordCommit, Txn: "t2"},
		Record{Kind: RecordInstalled, Txn: "t2", Object: "y"},
	)
	states, err := Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	if states["y"].(adts.AccountState).Balance() != 6 {
		t.Errorf("balance %d, want 6", states["y"].(adts.AccountState).Balance())
	}
}

func TestRestartErrors(t *testing.T) {
	// Unknown object.
	d := newDiskWith(
		Record{Kind: RecordIntentions, Txn: "t1", Object: "zz", Calls: []spec.Call{call(adts.OpDeposit, value.Int(1), value.Unit())}},
		Record{Kind: RecordCommit, Txn: "t1"},
	)
	if _, err := Restart(d, map[histories.ObjectID]spec.SerialSpec{"y": adts.AccountSpec{}}); err == nil {
		t.Error("unknown object not reported")
	}
	// Divergent redo.
	d2 := newDiskWith(
		Record{Kind: RecordIntentions, Txn: "t1", Object: "y", Calls: []spec.Call{call(adts.OpWithdraw, value.Int(1), value.Unit())}},
		Record{Kind: RecordCommit, Txn: "t1"},
	)
	if _, err := Restart(d2, map[histories.ObjectID]spec.SerialSpec{"y": adts.AccountSpec{}}); err == nil {
		t.Error("divergent redo not reported")
	}
}

func TestDiskSnapshotIsolation(t *testing.T) {
	d := &Disk{}
	calls := []spec.Call{call(adts.OpDeposit, value.Int(1), value.Unit())}
	d.Append(Record{Kind: RecordIntentions, Txn: "t1", Object: "y", Calls: calls})
	calls[0] = call(adts.OpDeposit, value.Int(99), value.Unit())
	recs := d.Records()
	if got := recs[0].Calls[0].Inv.Arg; got != value.Int(1) {
		t.Errorf("disk aliased caller slice: %v", got)
	}
	if d.Len() != 1 {
		t.Errorf("len %d", d.Len())
	}
}
