package recovery

import (
	"weihl83/internal/fault"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
)

// Backend is the stable-storage seam: everything the protocol layers need
// from a write-ahead log, with the durability mechanism behind it
// pluggable. Two implementations ship: Disk, the in-memory model that the
// fault injector can tear deterministically (the chaos default), and
// FileWAL, a file-backed segmented log whose torn-write detection is real
// CRC framing rather than an injected flag.
//
// All methods are safe for concurrent use. The contract mirrors Disk's
// long-standing semantics:
//
//   - Append/AppendBatch: a nil error means the record group is durably
//     logged; any error means the caller must treat it as not logged (the
//     write-ahead rule — a commit that cannot be logged stays prepared).
//     AppendBatch isolates faults per group: errs[i] is nil iff group i is
//     durable, independent of its batch mates.
//   - Records returns a deep-copied snapshot; mutating it cannot alias the
//     live log.
//   - Checkpoint/CheckpointHosted snapshot committed state, compact the
//     log, and report estimated bytes reclaimed.
//   - SetInjector attaches a deterministic fault injector (nil detaches).
//   - Close releases any OS resources; the in-memory disk has none.
type Backend interface {
	Append(r Record) error
	AppendBatch(groups [][]Record) []error
	Records() []Record
	Len() int
	Checkpoint(specs map[histories.ObjectID]spec.SerialSpec) (int64, error)
	CheckpointHosted(specs map[histories.ObjectID]spec.SerialSpec, initialHosted map[histories.ObjectID]bool) (int64, error)
	SetInjector(in *fault.Injector)
	Close() error
}

var _ Backend = (*Disk)(nil)

// Close implements Backend. The in-memory disk holds no OS resources.
func (d *Disk) Close() error { return nil }
