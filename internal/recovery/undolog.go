package recovery

import (
	"fmt"

	"weihl83/internal/spec"
)

// UndoLog is the update-in-place recovery representation: for each executed
// operation it records the compensating invocations that reverse it. Abort
// applies the compensations in reverse (LIFO) order; commit discards them.
type UndoLog struct {
	frames [][]spec.Invocation
}

// Record pushes the compensations for one executed operation. An empty
// compensation list (the operation changed nothing) is still pushed so the
// log length mirrors the number of operations.
func (u *UndoLog) Record(compensations []spec.Invocation) {
	u.frames = append(u.frames, compensations)
}

// Len returns the number of recorded frames.
func (u *UndoLog) Len() int { return len(u.frames) }

// Undo applies all compensations in reverse order to st and returns the
// restored state.
func (u *UndoLog) Undo(st spec.State) (spec.State, error) {
	for i := len(u.frames) - 1; i >= 0; i-- {
		for _, inv := range u.frames[i] {
			out, err := spec.Apply(st, inv)
			if err != nil {
				return nil, fmt.Errorf("recovery: compensation %s not applicable: %w", inv, err)
			}
			st = out.Next
		}
	}
	return st, nil
}
