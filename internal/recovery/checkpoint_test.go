package recovery

import (
	"errors"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/fault"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func checkpointSpecs() map[histories.ObjectID]spec.SerialSpec {
	return map[histories.ObjectID]spec.SerialSpec{
		"a": adts.AccountSpec{},
		"b": adts.AccountSpec{},
	}
}

// commitDeposit logs one committed deposit of amt into obj.
func commitDeposit(t *testing.T, d *Disk, txn histories.ActivityID, obj histories.ObjectID, amt int64) {
	t.Helper()
	if err := d.Append(Record{
		Kind:   RecordIntentions,
		Txn:    txn,
		Object: obj,
		Calls:  []spec.Call{call(adts.OpDeposit, value.Int(amt), value.Unit())},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecordCommit, Txn: txn}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCompactsAndRestartsIdentically: a checkpoint compacts many
// committed transactions into one snapshot record, reclaims space, and
// Restart rebuilds the exact same states from the compacted log.
func TestCheckpointCompactsAndRestartsIdentically(t *testing.T) {
	d := &Disk{}
	specs := checkpointSpecs()
	for i := 0; i < 10; i++ {
		commitDeposit(t, d, histories.ActivityID(rune('a'+i)), "a", 5)
		commitDeposit(t, d, histories.ActivityID(rune('A'+i)), "b", 3)
	}
	before, err := Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Len()
	reclaimed, err := d.Checkpoint(specs)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Errorf("reclaimed = %d, want > 0", reclaimed)
	}
	if d.Len() != 1 {
		t.Errorf("log length after checkpoint = %d (was %d), want 1", d.Len(), n)
	}
	after, err := Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range before {
		if after[id] == nil || after[id].Key() != st.Key() {
			t.Errorf("object %s: full-log restart %q, compacted restart %q", id, st.Key(), after[id].Key())
		}
	}
	if after["a"].(adts.AccountState).Balance() != 50 || after["b"].(adts.AccountState).Balance() != 30 {
		t.Errorf("balances %v/%v, want 50/30", after["a"], after["b"])
	}
}

// TestCheckpointKeepsUndecidedIntentions: intentions of a transaction with
// no outcome survive compaction (a later commit record must still find
// them), while committed and aborted transactions' records are dropped.
func TestCheckpointKeepsUndecidedIntentions(t *testing.T) {
	d := &Disk{}
	specs := checkpointSpecs()
	commitDeposit(t, d, "done", "a", 7)
	// An aborted transaction: record dropped entirely (presumed abort).
	if err := d.Append(Record{
		Kind:   RecordIntentions,
		Txn:    "gone",
		Object: "a",
		Calls:  []spec.Call{call(adts.OpDeposit, value.Int(100), value.Unit())},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecordAbort, Txn: "gone"}); err != nil {
		t.Fatal(err)
	}
	// An in-doubt transaction: intentions must survive.
	if err := d.Append(Record{
		Kind:         RecordIntentions,
		Txn:          "doubt",
		Object:       "b",
		Calls:        []spec.Call{call(adts.OpDeposit, value.Int(9), value.Unit())},
		Participants: []string{"A", "B"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(specs); err != nil {
		t.Fatal(err)
	}
	recs := d.Records()
	if len(recs) != 2 {
		t.Fatalf("compacted log has %d records, want checkpoint + in-doubt intentions", len(recs))
	}
	cp, doubt := recs[0], recs[1]
	if cp.Kind != RecordCheckpoint || !cp.Decided["done"] || cp.Decided["gone"] {
		t.Errorf("checkpoint record %+v: want Decided={done}", cp)
	}
	if doubt.Kind != RecordIntentions || doubt.Txn != "doubt" || len(doubt.Participants) != 2 {
		t.Errorf("surviving record %+v, want doubt's intentions with participants", doubt)
	}
	// The decision arrives after compaction; restart installs it.
	if err := d.Append(Record{Kind: RecordCommit, Txn: "doubt"}); err != nil {
		t.Fatal(err)
	}
	states, err := Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	if states["b"].(adts.AccountState).Balance() != 9 {
		t.Errorf("b = %v, want 9 (post-checkpoint commit of surviving intentions)", states["b"])
	}
	if states["a"].(adts.AccountState).Balance() != 7 {
		t.Errorf("a = %v, want 7 (aborted deposit must not survive)", states["a"])
	}
}

// TestCheckpointDecidedAccumulates: a second checkpoint absorbs the first
// one's Decided set, so peer-outcome queries keep finding old commits
// however often the log compacts.
func TestCheckpointDecidedAccumulates(t *testing.T) {
	d := &Disk{}
	specs := checkpointSpecs()
	commitDeposit(t, d, "t1", "a", 1)
	if _, err := d.Checkpoint(specs); err != nil {
		t.Fatal(err)
	}
	commitDeposit(t, d, "t2", "a", 2)
	if _, err := d.Checkpoint(specs); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("log length %d, want 1", d.Len())
	}
	cp := d.Records()[0]
	if !cp.Decided["t1"] || !cp.Decided["t2"] {
		t.Errorf("Decided = %v, want t1 and t2", cp.Decided)
	}
	states, err := Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	if states["a"].(adts.AccountState).Balance() != 3 {
		t.Errorf("a = %v, want 3", states["a"])
	}
}

// TestCheckpointTornFallsBackToFullLog: a torn checkpoint write leaves the
// log uncompacted, surfaces the retryable write failure, and Restart
// ignores the torn record — the full log stays the source of truth, and a
// retried checkpoint succeeds.
func TestCheckpointTornFallsBackToFullLog(t *testing.T) {
	d := &Disk{}
	specs := checkpointSpecs()
	inj := fault.New(3)
	inj.Enable(fault.DiskCheckpointTorn, fault.Rule{Prob: 1, Limit: 1})
	d.SetInjector(inj)
	for i := 0; i < 4; i++ {
		commitDeposit(t, d, histories.ActivityID(rune('a'+i)), "a", 5)
	}
	n := d.Len()
	_, err := d.Checkpoint(specs)
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("torn checkpoint = %v, want ErrWriteFailed", err)
	}
	if d.Len() != n+1 {
		t.Errorf("log length %d, want %d (uncompacted + torn marker)", d.Len(), n+1)
	}
	states, err := Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	if states["a"].(adts.AccountState).Balance() != 20 {
		t.Errorf("a = %v, want 20 (full-log replay past the torn checkpoint)", states["a"])
	}
	// The torn rule is exhausted: a retry compacts.
	if _, err := d.Checkpoint(specs); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Errorf("log length after retried checkpoint = %d, want 1", d.Len())
	}
	states, err = Restart(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	if states["a"].(adts.AccountState).Balance() != 20 {
		t.Errorf("a = %v, want 20 after compaction", states["a"])
	}
}
