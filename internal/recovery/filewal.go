package recovery

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"weihl83/internal/fault"
	"weihl83/internal/histories"
	"weihl83/internal/obs"
	"weihl83/internal/spec"
)

// Durability observability: fsync latency and how many transactions each
// forced write amortises. One fsync per AppendBatch is the whole point of
// group commit; these two instruments make the batching visible in
// Metrics() snapshots and bankbench -json.
var (
	obsFsyncLatency   = obs.Default.Histogram("wal.fsync")
	obsFsyncBatchSize = obs.Default.Counter("wal.fsync.batch_size")
	obsFsyncCount     = obs.Default.Counter("wal.fsync.count")
)

// manifestName is the checkpoint manifest file inside a WAL directory.
const manifestName = "MANIFEST"

// segPrefix/segSuffix frame segment file names: wal-<8-digit-seq>.seg.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// defaultSegmentBytes is the rotation threshold for the active segment.
const defaultSegmentBytes = 4 << 20

// walFile is the slice of *os.File the WAL needs — the injectable seam for
// simulating write and fsync failures from the OS side in tests.
type walFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// walFS is the file-system layer beneath FileWAL. Production uses osFS;
// tests substitute implementations whose files fail to write or sync.
type walFS interface {
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	OpenAppend(path string) (walFile, int64, error)
	Truncate(path string, size int64) error
	SyncDir(dir string) error
}

// osFS is walFS over the real file system.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error)   { return os.ReadFile(path) }
func (osFS) Rename(oldPath, newPath string) error   { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error               { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) OpenAppend(path string) (walFile, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// manifest is the checkpoint manifest: recovery scans segments with
// seq >= Base in ascending order; everything below Base is reclaimed
// space. The manifest is replaced atomically (tmp + fsync + rename + dir
// fsync), so its update is the checkpoint's durability point: a crash
// before the rename leaves the old log authoritative and the half-written
// checkpoint segment garbage.
type manifest struct {
	Base uint64 `json:"base"`
}

// FileWALOptions configures OpenFileWAL.
type FileWALOptions struct {
	// Dir is the WAL directory; created if absent.
	Dir string
	// Specs names the spec (and thus the StateCodec) of every object that
	// may appear in a checkpoint snapshot on disk. Needed only to reopen a
	// directory whose log contains a checkpoint record; appends and
	// checkpoints taken through this handle use the specs passed to
	// Checkpoint itself.
	Specs map[histories.ObjectID]spec.SerialSpec
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// Injector is an optional deterministic fault injector (see
	// fault.DiskWriteTorn, fault.DiskFsyncFail, fault.DiskCheckpointTorn).
	Injector *fault.Injector
	// FS substitutes the file-system layer (tests); nil means the OS.
	FS walFS
}

// FileWAL is the file-backed segmented Backend: CRC32C-framed records,
// fsync-batched group commit (one fsync per AppendBatch), segment rotation
// with an on-disk checkpoint manifest, and recovery that scans segments in
// manifest order and trims the torn tail of the final segment at the
// first bad frame.
//
// It mirrors the durable records in memory so Records(), Len() and the
// checkpoint replay are identical to the in-memory Disk's; the mirror is
// only ever updated after the corresponding bytes are durable.
type FileWAL struct {
	mu      sync.Mutex
	dir     string
	fs      walFS
	specs   map[histories.ObjectID]spec.SerialSpec
	segMax  int64
	inj     *fault.Injector
	records []Record // mirror of the durable log

	active    walFile // current segment, opened for append
	activeSeq uint64
	activeLen int64
	closed    bool
}

var _ Backend = (*FileWAL)(nil)

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// OpenFileWAL opens (or creates) the segmented WAL in opts.Dir and
// recovers its durable contents: the manifest names the base segment,
// segments are scanned in ascending sequence order, a torn tail in the
// final segment is physically truncated away, and damage anywhere else is
// ErrCorrupt. The returned handle is ready for appends.
func OpenFileWAL(opts FileWALOptions) (*FileWAL, error) {
	fs := opts.FS
	if fs == nil {
		fs = osFS{}
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("recovery: OpenFileWAL: empty Dir")
	}
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("recovery: OpenFileWAL: %w", err)
	}
	w := &FileWAL{
		dir:    opts.Dir,
		fs:     fs,
		specs:  opts.Specs,
		segMax: opts.SegmentBytes,
		inj:    opts.Injector,
	}
	if w.segMax <= 0 {
		w.segMax = defaultSegmentBytes
	}
	if err := w.load(); err != nil {
		return nil, err
	}
	return w, nil
}

// load scans the directory and rebuilds the in-memory mirror.
func (w *FileWAL) load() error {
	var m manifest
	if b, err := w.fs.ReadFile(filepath.Join(w.dir, manifestName)); err == nil {
		if err := json.Unmarshal(b, &m); err != nil {
			return fmt.Errorf("recovery: %s: %w", manifestName, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("recovery: read manifest: %w", err)
	}
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("recovery: scan %s: %w", w.dir, err)
	}
	var seqs []uint64
	for _, name := range names {
		seq, ok := parseSegName(name)
		if !ok {
			continue
		}
		if seq < m.Base {
			// Reclaimed by a checkpoint whose cleanup was interrupted.
			_ = w.fs.Remove(filepath.Join(w.dir, segName(seq)))
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	// An unmanifested checkpoint segment — one that begins with a
	// checkpoint record but that the manifest does not name as base — is a
	// checkpoint whose durability point (the manifest rename) was never
	// reached. The log before it is complete and authoritative; the
	// aborted attempt is garbage. It can only be the final segment:
	// nothing is ever appended after a checkpoint write that did not
	// reach its manifest update.
	for len(seqs) > 0 {
		last := seqs[len(seqs)-1]
		if last == m.Base {
			break
		}
		aborted, err := w.isAbortedCheckpoint(last)
		if err != nil {
			return err
		}
		if !aborted {
			break
		}
		if err := w.fs.Remove(filepath.Join(w.dir, segName(last))); err != nil {
			return fmt.Errorf("recovery: drop aborted checkpoint segment: %w", err)
		}
		seqs = seqs[:len(seqs)-1]
	}

	for i, seq := range seqs {
		final := i == len(seqs)-1
		if err := w.loadSegment(seq, final); err != nil {
			return err
		}
	}

	// Open (or create) the active segment for appends.
	var activeSeq uint64 = m.Base
	if len(seqs) > 0 {
		activeSeq = seqs[len(seqs)-1]
	}
	f, size, err := w.fs.OpenAppend(filepath.Join(w.dir, segName(activeSeq)))
	if err != nil {
		return fmt.Errorf("recovery: open active segment: %w", err)
	}
	w.active, w.activeSeq, w.activeLen = f, activeSeq, size
	if len(seqs) == 0 {
		// Fresh directory: make the first segment's existence durable.
		if err := w.fs.SyncDir(w.dir); err != nil {
			w.active.Close()
			return fmt.Errorf("recovery: sync dir: %w", err)
		}
	}
	return nil
}

// isAbortedCheckpoint reports whether segment seq begins with a checkpoint
// record.
func (w *FileWAL) isAbortedCheckpoint(seq uint64) (bool, error) {
	data, err := w.fs.ReadFile(filepath.Join(w.dir, segName(seq)))
	if err != nil {
		return false, fmt.Errorf("recovery: read segment %d: %w", seq, err)
	}
	payloads, _, _ := scanFrames(data)
	if len(payloads) == 0 {
		return false, nil
	}
	r, err := decodeRecord(payloads[0], w.specs)
	if err != nil {
		return false, err
	}
	return r.Kind == RecordCheckpoint, nil
}

// loadSegment decodes one segment into the mirror. In the final segment a
// torn tail is trimmed — physically truncated — because the write-ahead
// protocol guarantees no transaction whose records sit past the tear was
// ever acknowledged. Anywhere else, damage is ErrCorrupt.
func (w *FileWAL) loadSegment(seq uint64, final bool) error {
	path := filepath.Join(w.dir, segName(seq))
	data, err := w.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("recovery: read segment %d: %w", seq, err)
	}
	payloads, valid, torn := scanFrames(data)
	if torn && !final {
		return fmt.Errorf("%w: segment %d torn at offset %d but is not the final segment", ErrCorrupt, seq, valid)
	}
	for _, p := range payloads {
		r, err := decodeRecord(p, w.specs)
		if err != nil {
			return fmt.Errorf("segment %d: %w", seq, err)
		}
		w.records = append(w.records, r)
	}
	if torn {
		if err := w.fs.Truncate(path, int64(valid)); err != nil {
			return fmt.Errorf("recovery: trim torn tail of segment %d: %w", seq, err)
		}
	}
	return nil
}

// SetInjector implements Backend.
func (w *FileWAL) SetInjector(in *fault.Injector) {
	w.mu.Lock()
	w.inj = in
	w.mu.Unlock()
}

// Dir returns the WAL directory.
func (w *FileWAL) Dir() string { return w.dir }

// Close implements Backend: it closes the active segment. The log needs no
// shutdown protocol — every acknowledged record is already durable.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.active.Close()
}

// Append implements Backend: one record, forced durable before return.
func (w *FileWAL) Append(r Record) error {
	errs := w.AppendBatch([][]Record{{r}})
	return errs[0]
}

// AppendBatch implements Backend — the group-commit force. Every group's
// frames are written to the active segment, then a single fsync makes the
// whole batch durable. Fault isolation mirrors the in-memory disk: a torn
// or failed write inside group i truncates the file back to before the
// failed frame and fails group i alone (its earlier records stay, exactly
// the unacknowledged prefix a solo committer would leave), while later
// groups continue at the truncated offset. A failed fsync fails every
// group and truncates back to the batch start: a commit record whose force
// failed must not be durable, or a transaction the client saw abort could
// resurrect at restart.
func (w *FileWAL) AppendBatch(groups [][]Record) []error {
	w.mu.Lock()
	defer w.mu.Unlock()
	errs := make([]error, len(groups))
	if w.closed {
		for i := range errs {
			errs[i] = fmt.Errorf("%w: wal closed", ErrWriteFailed)
		}
		return errs
	}
	obsWALBatchSize.Observe(int64(len(groups)))

	batchStart := w.activeLen
	var durable []Record
	for i, group := range groups {
		for _, r := range group {
			if err := w.writeRecordLocked(r); err != nil {
				// The group's earlier frames stay in the log without a
				// commit record; restart ignores them, exactly as with
				// the in-memory disk.
				errs[i] = err
				break
			}
			durable = append(durable, r.clone())
		}
	}

	if len(durable) > 0 {
		if err := w.syncLocked(len(groups)); err != nil {
			// Nothing in this batch may be acknowledged: rewind the
			// segment to the batch start and fail every group.
			if terr := w.active.Truncate(batchStart); terr == nil {
				w.activeLen = batchStart
			}
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
			return errs
		}
	}

	for _, r := range durable {
		w.records = append(w.records, r)
		obsWALAppends.Inc()
	}
	w.maybeRotateLocked()
	return errs
}

// writeRecordLocked encodes and writes one frame, applying the torn-write
// fault point. On any failure the segment is truncated back to the frame
// start so the live log stays clean — on a real disk a torn tail only
// survives a crash; a live process that saw the write fail repairs it.
func (w *FileWAL) writeRecordLocked(r Record) error {
	payload, err := encodeRecord(r, w.specs)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWriteFailed, err)
	}
	frame := appendFrame(nil, payload)
	start := w.activeLen
	if w.inj.Fires(fault.DiskWriteTorn) {
		// Model the tear faithfully: a prefix reaches the file, then the
		// write fails and the backend repairs by truncating.
		if _, werr := w.active.Write(frame[:len(frame)/2]); werr == nil {
			w.activeLen += int64(len(frame) / 2)
		}
		if terr := w.active.Truncate(start); terr == nil {
			w.activeLen = start
		}
		obsWALTorn.Inc()
		return fmt.Errorf("%w: torn write of record for %s", ErrWriteFailed, r.Txn)
	}
	n, err := w.active.Write(frame)
	w.activeLen += int64(n)
	if err != nil {
		if terr := w.active.Truncate(start); terr == nil {
			w.activeLen = start
		}
		obsWALFailed.Inc()
		return fmt.Errorf("%w: write for %s: %v", ErrWriteFailed, r.Txn, err)
	}
	obsWALBytes.Add(int64(len(frame)))
	return nil
}

// syncLocked forces the active segment, applying the fsync fault point and
// recording latency + amortisation.
func (w *FileWAL) syncLocked(batch int) error {
	if w.inj.Fires(fault.DiskFsyncFail) {
		obsWALFailed.Inc()
		return fmt.Errorf("%w: fsync failed", ErrWriteFailed)
	}
	start := time.Now()
	if err := w.active.Sync(); err != nil {
		obsWALFailed.Inc()
		return fmt.Errorf("%w: fsync: %v", ErrWriteFailed, err)
	}
	obsFsyncLatency.Observe(time.Since(start).Nanoseconds())
	obsFsyncCount.Inc()
	obsFsyncBatchSize.Add(int64(batch))
	return nil
}

// maybeRotateLocked starts a fresh segment once the active one is over the
// rotation threshold. The old segment is already durable; the new file's
// directory entry is fsynced before any record lands in it, so the
// scan-in-sequence-order recovery invariant (only the final segment may be
// torn) holds across rotation.
func (w *FileWAL) maybeRotateLocked() {
	if w.activeLen < w.segMax {
		return
	}
	next := w.activeSeq + 1
	f, size, err := w.fs.OpenAppend(filepath.Join(w.dir, segName(next)))
	if err != nil {
		return // keep appending to the oversized segment
	}
	if size > 0 {
		// A rotation target can only pre-exist as garbage.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return
		}
		size = 0
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		_ = w.fs.Remove(filepath.Join(w.dir, segName(next)))
		return
	}
	w.active.Close()
	w.active, w.activeSeq, w.activeLen = f, next, size
}

// Records implements Backend: a deep-copied snapshot of the durable log.
func (w *FileWAL) Records() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Record, len(w.records))
	for i := range w.records {
		out[i] = w.records[i].clone()
	}
	return out
}

// Len implements Backend.
func (w *FileWAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}

// Checkpoint implements Backend. See CheckpointHosted.
func (w *FileWAL) Checkpoint(specs map[histories.ObjectID]spec.SerialSpec) (int64, error) {
	return w.checkpoint(specs, nil, false)
}

// CheckpointHosted implements Backend: it replays the log into a snapshot,
// writes checkpoint + undecided intentions to a fresh segment, atomically
// updates the manifest (the checkpoint's durability point), and reclaims
// every older segment. It returns the real bytes reclaimed. Under
// fault.DiskCheckpointTorn the checkpoint segment is abandoned before its
// manifest update — exactly the crash the recovery scan repairs — and the
// uncompacted log stays authoritative.
func (w *FileWAL) CheckpointHosted(specs map[histories.ObjectID]spec.SerialSpec, initialHosted map[histories.ObjectID]bool) (int64, error) {
	return w.checkpoint(specs, initialHosted, true)
}

func (w *FileWAL) checkpoint(specs map[histories.ObjectID]spec.SerialSpec, initialHosted map[histories.ObjectID]bool, withHosted bool) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("%w: wal closed", ErrWriteFailed)
	}
	states, hosted, err := replayHosted(w.records, specs, initialHosted)
	if err != nil {
		return 0, fmt.Errorf("recovery: checkpoint replay: %w", err)
	}
	cp := Record{Kind: RecordCheckpoint, States: states, Decided: make(map[histories.ActivityID]bool)}
	if withHosted {
		cp.Hosted = hosted
	}
	undecided := make(map[histories.ActivityID]bool)
	for _, r := range w.records {
		switch r.Kind {
		case RecordIntentions:
			undecided[r.Txn] = true
		case RecordCommit:
			delete(undecided, r.Txn)
			cp.Decided[r.Txn] = true
		case RecordAbort:
			delete(undecided, r.Txn)
		case RecordCheckpoint:
			for txn := range r.Decided {
				cp.Decided[txn] = true
			}
		}
	}
	// Carry the replica delivery watermark forward: compaction drops the
	// committed ReplicaIn records whose effects the snapshot folds in.
	replicaTS := make(map[histories.ObjectID]histories.Timestamp)
	for _, r := range w.records {
		switch r.Kind {
		case RecordIntentions:
			if r.Migrate == ReplicaIn && cp.Decided[r.Txn] && r.TS > replicaTS[r.Object] {
				replicaTS[r.Object] = r.TS
			}
		case RecordCheckpoint:
			for id, ts := range r.ReplicaTS {
				if ts > replicaTS[id] {
					replicaTS[id] = ts
				}
			}
		}
	}
	if len(replicaTS) > 0 {
		cp.ReplicaTS = replicaTS
	}
	compacted := []Record{cp}
	for _, r := range w.records {
		if r.Kind == RecordIntentions && undecided[r.Txn] {
			compacted = append(compacted, r.clone())
		}
	}

	// Serialize the whole compacted log up front: an unencodable state
	// (spec without a codec) must fail the checkpoint before any disk
	// mutation.
	var buf []byte
	for _, r := range compacted {
		payload, err := encodeRecord(r, specs)
		if err != nil {
			return 0, fmt.Errorf("recovery: checkpoint: %w", err)
		}
		buf = appendFrame(buf, payload)
	}

	before := w.segmentBytesLocked()
	next := w.activeSeq + 1
	nextPath := filepath.Join(w.dir, segName(next))
	f, size, err := w.fs.OpenAppend(nextPath)
	if err != nil {
		return 0, fmt.Errorf("%w: checkpoint segment: %v", ErrWriteFailed, err)
	}
	if size > 0 {
		// Leftovers of an earlier abandoned attempt at this sequence.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return 0, fmt.Errorf("%w: checkpoint segment truncate: %v", ErrWriteFailed, err)
		}
	}
	if w.inj.Fires(fault.DiskCheckpointTorn) {
		// The checkpoint segment tears before its manifest update — the
		// attempt never reached its durability point, so the repair is
		// the same as the recovery scan's: discard it and keep the full
		// uncompacted log authoritative.
		_, _ = f.Write(buf[:len(buf)/2])
		f.Close()
		_ = w.fs.Remove(nextPath)
		obsCheckpointTorn.Inc()
		return 0, fmt.Errorf("%w: torn checkpoint", ErrWriteFailed)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		_ = w.fs.Remove(nextPath)
		obsCheckpointTorn.Inc()
		return 0, fmt.Errorf("%w: checkpoint write: %v", ErrWriteFailed, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = w.fs.Remove(nextPath)
		obsCheckpointTorn.Inc()
		return 0, fmt.Errorf("%w: checkpoint fsync: %v", ErrWriteFailed, err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		_ = w.fs.Remove(nextPath)
		return 0, fmt.Errorf("%w: checkpoint dir fsync: %v", ErrWriteFailed, err)
	}
	if err := w.writeManifestLocked(manifest{Base: next}); err != nil {
		f.Close()
		_ = w.fs.Remove(nextPath)
		return 0, err
	}

	// The manifest rename committed the checkpoint: everything below next
	// is reclaimable space.
	w.active.Close()
	if names, err := w.fs.ReadDir(w.dir); err == nil {
		for _, name := range names {
			if seq, ok := parseSegName(name); ok && seq < next {
				_ = w.fs.Remove(filepath.Join(w.dir, name))
			}
		}
	}
	w.active, w.activeSeq, w.activeLen = f, next, int64(len(buf))
	w.records = compacted

	after := int64(len(buf))
	reclaimed := before - after
	if reclaimed < 0 {
		reclaimed = 0
	}
	obsCheckpoints.Inc()
	obsCheckpointReclaim.Add(reclaimed)
	obsWALAppends.Inc()
	obsWALBytes.Add(after)
	return reclaimed, nil
}

// segmentBytesLocked sums the on-disk size of every live segment.
func (w *FileWAL) segmentBytesLocked() int64 {
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return w.activeLen
	}
	var total int64
	for _, name := range names {
		if _, ok := parseSegName(name); !ok {
			continue
		}
		if data, err := w.fs.ReadFile(filepath.Join(w.dir, name)); err == nil {
			total += int64(len(data))
		}
	}
	return total
}

// writeManifestLocked atomically replaces the manifest: tmp write, fsync,
// rename, dir fsync.
func (w *FileWAL) writeManifestLocked(m manifest) error {
	body := []byte(fmt.Sprintf("{\"base\":%d}\n", m.Base))
	tmp := filepath.Join(w.dir, manifestName+".tmp")
	f, _, err := w.fs.OpenAppend(tmp)
	if err != nil {
		return fmt.Errorf("%w: manifest tmp: %v", ErrWriteFailed, err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return fmt.Errorf("%w: manifest tmp truncate: %v", ErrWriteFailed, err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return fmt.Errorf("%w: manifest write: %v", ErrWriteFailed, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("%w: manifest fsync: %v", ErrWriteFailed, err)
	}
	f.Close()
	if err := w.fs.Rename(tmp, filepath.Join(w.dir, manifestName)); err != nil {
		return fmt.Errorf("%w: manifest rename: %v", ErrWriteFailed, err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("%w: manifest dir fsync: %v", ErrWriteFailed, err)
	}
	return nil
}
