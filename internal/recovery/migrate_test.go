package recovery

import (
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// stateWithBalance builds an account state with a balance, for migration
// baselines.
func stateWithBalance(t *testing.T, n int64) spec.State {
	t.Helper()
	out, err := spec.Apply(adts.AccountSpec{}.Init(), spec.Invocation{Op: adts.OpDeposit, Arg: value.Int(n)})
	if err != nil {
		t.Fatal(err)
	}
	return out.Next
}

// TestRestartHostedMigrateOutDropsObject: a committed migrate-out removes
// the object from the site's committed state and hosting; an undecided one
// changes nothing (presumed abort).
func TestRestartHostedMigrateOutDropsObject(t *testing.T) {
	d := &Disk{}
	specs := checkpointSpecs()
	commitDeposit(t, d, "t1", "a", 40)
	if err := d.Append(Record{Kind: RecordIntentions, Txn: "m1", Object: "a", Migrate: MigrateOut, RingV: 2, Participants: []string{"S1", "S2"}}); err != nil {
		t.Fatal(err)
	}

	// Undecided migration: the object stays home with its state.
	states, hosted, err := RestartHosted(d, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hosted["a"] || states["a"] == nil {
		t.Fatalf("undecided migrate-out already removed the object: hosted=%v", hosted)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 40 {
		t.Errorf("balance before decision = %d, want 40", got)
	}

	// Committed migration: object and state leave the site.
	if err := d.Append(Record{Kind: RecordCommit, Txn: "m1"}); err != nil {
		t.Fatal(err)
	}
	states, hosted, err = RestartHosted(d, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hosted["a"] {
		t.Error("object still hosted after committed migrate-out")
	}
	if _, ok := states["a"]; ok {
		t.Error("object state survived a committed migrate-out")
	}
	if !hosted["b"] {
		t.Error("unrelated object lost hosting")
	}
}

// TestRestartHostedMigrateInAdoptsBaseline: a committed migrate-in makes
// the copied state the object's committed baseline at the new home, and
// later client intentions replay on top of it.
func TestRestartHostedMigrateInAdoptsBaseline(t *testing.T) {
	d := &Disk{}
	specs := checkpointSpecs()
	initial := map[histories.ObjectID]bool{"b": true} // seeded with b only
	if err := d.Append(Record{
		Kind: RecordIntentions, Txn: "m1", Object: "a", Migrate: MigrateIn, RingV: 2,
		States: map[histories.ObjectID]spec.State{"a": stateWithBalance(t, 40)},
	}); err != nil {
		t.Fatal(err)
	}

	// Undecided: the site is not yet home.
	_, hosted, err := RestartHosted(d, specs, initial)
	if err != nil {
		t.Fatal(err)
	}
	if hosted["a"] {
		t.Error("undecided migrate-in already took hosting")
	}

	if err := d.Append(Record{Kind: RecordCommit, Txn: "m1"}); err != nil {
		t.Fatal(err)
	}
	commitDeposit(t, d, "t2", "a", 5) // post-move client txn at the new home
	states, hosted, err := RestartHosted(d, specs, initial)
	if err != nil {
		t.Fatal(err)
	}
	if !hosted["a"] {
		t.Error("committed migrate-in did not take hosting")
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 45 {
		t.Errorf("balance = %d, want 45 (migrated 40 + deposited 5)", got)
	}
}

// TestCheckpointHostedSurvivesCompaction: compaction drops committed
// migration records, so the checkpoint must carry hosting — after a
// migrate-out, a migrate-in, and a checkpoint, a restart from the
// compacted log reproduces both states and hosting exactly.
func TestCheckpointHostedSurvivesCompaction(t *testing.T) {
	d := &Disk{}
	specs := checkpointSpecs()
	initial := map[histories.ObjectID]bool{"a": true, "b": true}
	commitDeposit(t, d, "t1", "b", 7)
	// "a" leaves, "c" arrives.
	if err := d.Append(Record{Kind: RecordIntentions, Txn: "m1", Object: "a", Migrate: MigrateOut, RingV: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecordCommit, Txn: "m1"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{
		Kind: RecordIntentions, Txn: "m2", Object: "c", Migrate: MigrateIn, RingV: 3,
		States: map[histories.ObjectID]spec.State{"c": stateWithBalance(t, 11)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecordCommit, Txn: "m2"}); err != nil {
		t.Fatal(err)
	}
	specs["c"] = adts.AccountSpec{}

	wantStates, wantHosted, err := RestartHosted(d, specs, initial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CheckpointHosted(specs, initial); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("log length after checkpoint = %d, want 1", d.Len())
	}
	gotStates, gotHosted, err := RestartHosted(d, specs, initial)
	if err != nil {
		t.Fatal(err)
	}
	for id, h := range wantHosted {
		if gotHosted[id] != h {
			t.Errorf("hosted[%s] = %v after compaction, want %v", id, gotHosted[id], h)
		}
	}
	if gotHosted["a"] || !gotHosted["b"] || !gotHosted["c"] {
		t.Errorf("hosting after compaction = %v, want a gone, b and c home", gotHosted)
	}
	for id, st := range wantStates {
		if gotStates[id] == nil || gotStates[id].Key() != st.Key() {
			t.Errorf("state[%s] diverged across compaction", id)
		}
	}
	if got := gotStates["c"].(adts.AccountState).Balance(); got != 11 {
		t.Errorf("migrated-in balance = %d, want 11", got)
	}
}
