package recovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/fault"
	"weihl83/internal/histories"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

func openTestWAL(t *testing.T, dir string, specs map[histories.ObjectID]spec.SerialSpec) *FileWAL {
	t.Helper()
	w, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func fileDeposit(t *testing.T, w Backend, txn histories.ActivityID, obj histories.ObjectID, amt int64) {
	t.Helper()
	for _, r := range depositGroup(txn, obj, amt) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileWALRoundTrip: records appended through the file backend survive a
// close + reopen bit-exactly, and Restart rebuilds the same states as the
// in-memory disk would.
func TestFileWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specs := checkpointSpecs()
	w := openTestWAL(t, dir, specs)
	fileDeposit(t, w, "t1", "a", 5)
	fileDeposit(t, w, "t2", "b", 7)
	if err := w.Append(Record{
		Kind:         RecordIntentions,
		Txn:          "doubt",
		Object:       "a",
		Calls:        []spec.Call{call(adts.OpDeposit, value.Int(100), value.Unit())},
		Participants: []string{"A", "B"},
		TS:           42,
	}); err != nil {
		t.Fatal(err)
	}
	before := w.Records()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, specs)
	after := w2.Records()
	if len(after) != len(before) {
		t.Fatalf("reopened log has %d records, want %d", len(after), len(before))
	}
	doubt := after[len(after)-1]
	if doubt.Txn != "doubt" || doubt.TS != 42 || len(doubt.Participants) != 2 || len(doubt.Calls) != 1 {
		t.Errorf("in-doubt record did not round-trip: %+v", doubt)
	}
	states, err := Restart(w2, specs)
	if err != nil {
		t.Fatal(err)
	}
	if states["a"].(adts.AccountState).Balance() != 5 || states["b"].(adts.AccountState).Balance() != 7 {
		t.Errorf("states %v/%v, want 5/7 (undecided deposit must not apply)", states["a"], states["b"])
	}
}

// TestFileWALAppendBatch: the group-commit entry point forces every group
// with one fsync and all of it survives reopen.
func TestFileWALAppendBatch(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, accountSpecs())
	errs := w.AppendBatch([][]Record{
		depositGroup("t1", "a", 1),
		depositGroup("t2", "a", 2),
		depositGroup("t3", "a", 4),
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
	}
	w.Close()
	w2 := openTestWAL(t, dir, accountSpecs())
	states, err := Restart(w2, accountSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 7 {
		t.Errorf("balance %d, want 7", got)
	}
}

// TestFileWALTornTailTrimmed: a crash mid-frame leaves a torn tail; reopen
// trims it physically at the first bad CRC and replays the clean prefix.
func TestFileWALTornTailTrimmed(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, accountSpecs())
	fileDeposit(t, w, "t1", "a", 5)
	fileDeposit(t, w, "t2", "a", 6)
	w.Close()

	// Tear the tail: chop the last 3 bytes of the segment, as a crash
	// mid-write would.
	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, accountSpecs())
	// t2's commit record is torn off: its intentions may survive, but the
	// transaction must not replay.
	states, err := Restart(w2, accountSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 5 {
		t.Errorf("balance %d, want 5 (torn t2 must not replay)", got)
	}
	// The trim is physical: the file ends at the last whole frame.
	trimmed, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	payloads, valid, torn := scanFrames(trimmed)
	if torn || valid != len(trimmed) {
		t.Errorf("segment not physically trimmed: %d bytes, %d valid, torn=%v", len(trimmed), valid, torn)
	}
	if len(payloads) != 3 {
		t.Errorf("trimmed segment has %d frames, want 3", len(payloads))
	}
	// Appends continue cleanly after the trim.
	fileDeposit(t, w2, "t3", "a", 2)
	w2.Close()
	w3 := openTestWAL(t, dir, accountSpecs())
	states, err = Restart(w3, accountSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 7 {
		t.Errorf("balance %d, want 7 after post-trim append", got)
	}
}

// TestFileWALCorruptNonFinalRefused: damage in a non-final segment cannot
// be a torn tail — every byte of a rotated segment was fsynced and
// acknowledged before the next segment opened — so open refuses with
// ErrCorrupt instead of silently trimming acknowledged history.
func TestFileWALCorruptNonFinalRefused(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	w, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		fileDeposit(t, w, histories.ActivityID(fmt.Sprintf("t%d", i)), "a", 1)
	}
	w.Close()

	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // flip a byte mid-segment
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs, SegmentBytes: 256})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open of corrupt non-final segment = %v, want ErrCorrupt", err)
	}
}

// TestFileWALCheckpointCompactsAndReclaims: a checkpoint writes snapshot +
// undecided intentions to a fresh segment, updates the manifest, deletes
// old segments, and a reopen replays identically.
func TestFileWALCheckpointCompactsAndReclaims(t *testing.T) {
	dir := t.TempDir()
	specs := checkpointSpecs()
	w := openTestWAL(t, dir, specs)
	for i := 0; i < 10; i++ {
		fileDeposit(t, w, histories.ActivityID(rune('a'+i)), "a", 5)
		fileDeposit(t, w, histories.ActivityID(rune('A'+i)), "b", 3)
	}
	if err := w.Append(Record{
		Kind:   RecordIntentions,
		Txn:    "doubt",
		Object: "b",
		Calls:  []spec.Call{call(adts.OpDeposit, value.Int(9), value.Unit())},
	}); err != nil {
		t.Fatal(err)
	}
	before, err := Restart(w, specs)
	if err != nil {
		t.Fatal(err)
	}
	reclaimed, err := w.Checkpoint(specs)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Errorf("reclaimed = %d, want > 0", reclaimed)
	}
	if w.Len() != 2 {
		t.Errorf("log length after checkpoint = %d, want checkpoint + in-doubt intentions", w.Len())
	}
	// Old segment physically gone, manifest points at the new base.
	if _, err := os.Stat(filepath.Join(dir, segName(0))); !os.IsNotExist(err) {
		t.Errorf("segment 0 still present after checkpoint (err=%v)", err)
	}

	// Post-checkpoint appends and the late decision land in the new segment.
	if err := w.Append(Record{Kind: RecordCommit, Txn: "doubt"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2 := openTestWAL(t, dir, specs)
	after, err := Restart(w2, specs)
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range before {
		want := st.Key()
		if id == "b" {
			want = (st.(adts.AccountState) + 9).Key()
		}
		if after[id] == nil || after[id].Key() != want {
			t.Errorf("object %s: want %q, got %v", id, want, after[id])
		}
	}
}

// TestFileWALCheckpointTornFault: under fault.DiskCheckpointTorn the
// checkpoint fails retryably, nothing is compacted, and the full log stays
// authoritative across a reopen; the retry compacts.
func TestFileWALCheckpointTornFault(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	w := openTestWAL(t, dir, specs)
	inj := fault.New(3)
	inj.Enable(fault.DiskCheckpointTorn, fault.Rule{Prob: 1, Limit: 1})
	w.SetInjector(inj)
	for i := 0; i < 4; i++ {
		fileDeposit(t, w, histories.ActivityID(rune('a'+i)), "a", 5)
	}
	n := w.Len()
	if _, err := w.Checkpoint(specs); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("torn checkpoint = %v, want ErrWriteFailed", err)
	}
	if w.Len() != n {
		t.Errorf("log length %d, want %d (uncompacted)", w.Len(), n)
	}
	w.Close()
	w2 := openTestWAL(t, dir, specs)
	states, err := Restart(w2, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 20 {
		t.Errorf("balance %d, want 20 after torn checkpoint + reopen", got)
	}
	if _, err := w2.Checkpoint(specs); err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 1 {
		t.Errorf("log length after retried checkpoint = %d, want 1", w2.Len())
	}
}

// TestFileWALAbortedCheckpointSegmentDiscarded: a crash after the
// checkpoint segment was written but before the manifest rename leaves an
// unmanifested checkpoint segment; reopen discards it and the full log
// stays authoritative.
func TestFileWALAbortedCheckpointSegmentDiscarded(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	w := openTestWAL(t, dir, specs)
	fileDeposit(t, w, "t1", "a", 5)
	w.Close()

	// Hand-craft the aborted attempt: a fully-written checkpoint segment
	// at seq 1 with no manifest update (the crash happened between fsync
	// and rename).
	cp := Record{
		Kind:    RecordCheckpoint,
		States:  map[histories.ObjectID]spec.State{"a": adts.AccountState(9999)},
		Decided: map[histories.ActivityID]bool{"t1": true},
	}
	payload, err := encodeRecord(cp, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1)), appendFrame(nil, payload), 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, specs)
	states, err := Restart(w2, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 5 {
		t.Errorf("balance %d, want 5 (aborted checkpoint snapshot must not be adopted)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Errorf("aborted checkpoint segment still present (err=%v)", err)
	}
}

// TestFileWALWriteTornFault: an injected torn frame write fails its group
// retryably, repairs the file by truncation, and later appends (and a
// reopen) see a clean log.
func TestFileWALWriteTornFault(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	w := openTestWAL(t, dir, specs)
	inj := fault.New(7)
	inj.Enable(fault.DiskWriteTorn, fault.Rule{Prob: 1, Limit: 1})
	w.SetInjector(inj)

	errs := w.AppendBatch([][]Record{
		depositGroup("t1", "a", 1), // first record tears
		depositGroup("t2", "a", 2),
	})
	if errs[0] == nil {
		t.Fatal("torn group reported success")
	}
	if !errors.Is(errs[0], ErrWriteFailed) {
		t.Fatalf("torn group error = %v, want ErrWriteFailed", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("tear leaked across groups: %v", errs[1])
	}
	w.Close()
	w2 := openTestWAL(t, dir, specs)
	states, err := Restart(w2, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 2 {
		t.Errorf("balance %d, want 2 (t2 only)", got)
	}
}

// TestFileWALFsyncFailFault: a failed batch fsync fails every group —
// including ones whose writes succeeded — and nothing from the batch
// survives a reopen: a commit the client saw fail must not resurrect.
func TestFileWALFsyncFailFault(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	w := openTestWAL(t, dir, specs)
	fileDeposit(t, w, "t0", "a", 10)
	inj := fault.New(5)
	inj.Enable(fault.DiskFsyncFail, fault.Rule{Prob: 1, Limit: 1})
	w.SetInjector(inj)

	errs := w.AppendBatch([][]Record{
		depositGroup("t1", "a", 1),
		depositGroup("t2", "a", 2),
	})
	for i, err := range errs {
		if !errors.Is(err, ErrWriteFailed) {
			t.Fatalf("group %d after fsync failure = %v, want ErrWriteFailed", i, err)
		}
	}
	if w.Len() != 2 {
		t.Errorf("mirror has %d records, want 2 (t0 only)", w.Len())
	}
	// The injector rule is exhausted; the next batch succeeds.
	if errs := w.AppendBatch([][]Record{depositGroup("t3", "a", 4)}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	w.Close()
	w2 := openTestWAL(t, dir, specs)
	states, err := Restart(w2, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 14 {
		t.Errorf("balance %d, want 14 (t0+t3; the failed batch must vanish)", got)
	}
}

// TestFileWALSegmentRotation: a tiny rotation threshold produces several
// segments; reopen scans them in sequence order and replays everything.
func TestFileWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	w, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		fileDeposit(t, w, histories.ActivityID(fmt.Sprintf("t%d", i)), "a", 1)
	}
	w.Close()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range names {
		if _, ok := parseSegName(e.Name()); ok {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("only %d segments after %d appends at 256-byte rotation, want several", segs, n)
	}
	w2, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	states, err := Restart(w2, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != n {
		t.Errorf("balance %d, want %d across %d segments", got, n, segs)
	}
}

// TestFileWALRecordsSnapshotIsolation: Records returns a deep copy —
// mutating it cannot reach the live mirror (the same contract the
// in-memory disk has).
func TestFileWALRecordsSnapshotIsolation(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, accountSpecs())
	fileDeposit(t, w, "t1", "a", 5)
	snap := w.Records()
	snap[0].Calls[0] = call(adts.OpDeposit, value.Int(999), value.Unit())
	snap[0].Txn = "mangled"
	states, err := Restart(w, accountSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 5 {
		t.Errorf("balance %d, want 5 (snapshot mutation leaked into the log)", got)
	}
}

// TestFileWALHostedCheckpoint: CheckpointHosted snapshots hosting and a
// reopen + RestartHosted rebuilds it, including a migrated-out object.
func TestFileWALHostedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	specs := checkpointSpecs()
	w := openTestWAL(t, dir, specs)
	fileDeposit(t, w, "t1", "a", 5)
	// b migrates out.
	if err := w.Append(Record{Kind: RecordIntentions, Txn: "mig", Object: "b", Migrate: MigrateOut}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: RecordCommit, Txn: "mig"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CheckpointHosted(specs, nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2 := openTestWAL(t, dir, specs)
	states, hosted, err := RestartHosted(w2, specs, map[histories.ObjectID]bool{"a": true, "b": true})
	if err != nil {
		t.Fatal(err)
	}
	if !hosted["a"] || hosted["b"] {
		t.Errorf("hosted = %v, want a only", hosted)
	}
	if _, ok := states["b"]; ok {
		t.Error("migrated-out object still has state after reopen")
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 5 {
		t.Errorf("balance %d, want 5", got)
	}
}

// failingFile wraps a walFile, failing operations on command.
type failingFile struct {
	walFile
	failWrite bool
	failSync  bool
}

func (f *failingFile) Write(p []byte) (int, error) {
	if f.failWrite {
		return 0, errors.New("boom: write")
	}
	return f.walFile.Write(p)
}

func (f *failingFile) Sync() error {
	if f.failSync {
		return errors.New("boom: sync")
	}
	return f.walFile.Sync()
}

// failingFS is osFS with per-file failure switches — the injectable file
// layer exercised from the OS-error side rather than the fault-point side.
type failingFS struct {
	osFS
	files []*failingFile
}

func (fs *failingFS) OpenAppend(path string) (walFile, int64, error) {
	f, size, err := fs.osFS.OpenAppend(path)
	if err != nil {
		return nil, 0, err
	}
	ff := &failingFile{walFile: f}
	fs.files = append(fs.files, ff)
	return ff, size, nil
}

// TestFileWALOSSyncErrorFailsBatch: a real fsync error from the file layer
// (not an injected fault) also fails the whole batch and truncates it away.
func TestFileWALOSSyncErrorFailsBatch(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	fs := &failingFS{}
	w, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fileDeposit(t, w, "t0", "a", 3)
	fs.files[len(fs.files)-1].failSync = true
	errs := w.AppendBatch([][]Record{depositGroup("t1", "a", 1)})
	if !errors.Is(errs[0], ErrWriteFailed) {
		t.Fatalf("batch after OS sync error = %v, want ErrWriteFailed", errs[0])
	}
	fs.files[len(fs.files)-1].failSync = false
	states, err := Restart(w, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 3 {
		t.Errorf("balance %d, want 3 (failed batch must not replay)", got)
	}
}

// TestFileWALOSWriteErrorIsolatesGroup: a real write error from the file
// layer fails only the group it hit.
func TestFileWALOSWriteErrorIsolatesGroup(t *testing.T) {
	dir := t.TempDir()
	specs := accountSpecs()
	fs := &failingFS{}
	w, err := OpenFileWAL(FileWALOptions{Dir: dir, Specs: specs, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	f := fs.files[len(fs.files)-1]
	f.failWrite = true
	errs := w.AppendBatch([][]Record{depositGroup("t1", "a", 1)})
	if !errors.Is(errs[0], ErrWriteFailed) {
		t.Fatalf("group after OS write error = %v, want ErrWriteFailed", errs[0])
	}
	f.failWrite = false
	if errs := w.AppendBatch([][]Record{depositGroup("t2", "a", 2)}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	states, err := Restart(w, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["a"].(adts.AccountState).Balance(); got != 2 {
		t.Errorf("balance %d, want 2 (t2 only)", got)
	}
}
