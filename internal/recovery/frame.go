package recovery

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Frame layout of the file-backed WAL: each record is one length-prefixed,
// checksummed frame
//
//	[4B payload length, little-endian][4B CRC32C of payload][payload]
//
// so torn-write detection is real rather than injected — a crash mid-write
// leaves a frame whose length or checksum cannot validate, and recovery
// trims the log at the first such frame of the final segment.

// frameHeaderSize is the fixed per-frame overhead.
const frameHeaderSize = 8

// maxFramePayload bounds a single record's serialized size. A length
// prefix beyond it can only come from corruption (or a torn length field),
// never from a frame this implementation wrote.
const maxFramePayload = 64 << 20

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a WAL segment whose damage cannot be explained by a
// torn tail: a bad frame in the middle of a segment, a bad frame in a
// non-final segment, or a checksum-valid payload that does not decode.
// Unlike a torn tail — which recovery trims, because the write-ahead
// protocol guarantees nothing after the tear was ever acknowledged — a
// corrupt segment means acknowledged history may be damaged, so recovery
// refuses to guess.
var ErrCorrupt = errors.New("recovery: corrupt WAL segment")

// appendFrame appends payload as one frame to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanFrames walks data frame by frame. It returns the decoded payloads
// (aliasing data), the byte length of the validated prefix, and whether
// the data ends in a torn tail — trailing bytes that do not form a
// complete checksum-valid frame. A torn tail is normal in the final
// segment of a crashed log; callers treat it as ErrCorrupt anywhere else.
func scanFrames(data []byte) (payloads [][]byte, valid int, torn bool) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return payloads, off, false
		}
		if len(rest) < frameHeaderSize {
			return payloads, off, true
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxFramePayload || int(n) > len(rest)-frameHeaderSize {
			// Length field torn or corrupt, or payload cut short.
			return payloads, off, true
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return payloads, off, true
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + int(n)
	}
}
