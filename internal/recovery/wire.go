package recovery

import (
	"encoding/json"
	"fmt"
	"sort"

	"weihl83/internal/histories"
	"weihl83/internal/spec"
)

// wireRecord is Record's serialized form inside a WAL frame. Everything is
// plain JSON except checkpoint state snapshots: spec.State is an interface,
// so each object's state is encoded through its spec's StateCodec and
// carried as raw bytes keyed by object id. Decoding therefore needs the
// spec table, which the file backend is constructed with.
type wireRecord struct {
	Kind         RecordKind                      `json:"k"`
	Txn          histories.ActivityID            `json:"t,omitempty"`
	Object       histories.ObjectID              `json:"o,omitempty"`
	Calls        []spec.Call                     `json:"c,omitempty"`
	TS           histories.Timestamp             `json:"ts,omitempty"`
	Migrate      MigrateDir                      `json:"m,omitempty"`
	RingV        uint64                          `json:"rv,omitempty"`
	Participants []string                        `json:"p,omitempty"`
	States       map[histories.ObjectID]rawState `json:"s,omitempty"`
	Decided      []histories.ActivityID          `json:"d,omitempty"`
	Hosted       map[histories.ObjectID]bool     `json:"h,omitempty"`
	ReplicaTS    map[histories.ObjectID]histories.Timestamp `json:"rts,omitempty"`
}

// rawState is one object's encoded snapshot state.
type rawState = json.RawMessage

// encodeRecord serializes r for the file backend. specs supplies the
// StateCodec for each object appearing in a checkpoint's States snapshot;
// a spec without a codec makes the record unencodable (the caller's
// checkpoint fails cleanly, leaving the uncompacted log authoritative).
// Torn records are never encoded: on a real file a torn write is a
// truncated frame, not a flagged record.
func encodeRecord(r Record, specs map[histories.ObjectID]spec.SerialSpec) ([]byte, error) {
	w := wireRecord{
		Kind:         r.Kind,
		Txn:          r.Txn,
		Object:       r.Object,
		Calls:        r.Calls,
		TS:           r.TS,
		Migrate:      r.Migrate,
		RingV:        r.RingV,
		Participants: r.Participants,
		Hosted:       r.Hosted,
		ReplicaTS:    r.ReplicaTS,
	}
	if r.States != nil {
		w.States = make(map[histories.ObjectID]rawState, len(r.States))
		for id, st := range r.States {
			s, ok := specs[id]
			if !ok {
				return nil, fmt.Errorf("recovery: encode: no spec for object %s", id)
			}
			codec, ok := s.(spec.StateCodec)
			if !ok {
				return nil, fmt.Errorf("recovery: encode: spec %s for object %s has no StateCodec", s.Name(), id)
			}
			b, err := codec.EncodeState(st)
			if err != nil {
				return nil, fmt.Errorf("recovery: encode state of %s: %w", id, err)
			}
			w.States[id] = b
		}
	}
	if r.Decided != nil {
		w.Decided = make([]histories.ActivityID, 0, len(r.Decided))
		for txn := range r.Decided {
			w.Decided = append(w.Decided, txn)
		}
		sort.Slice(w.Decided, func(i, j int) bool { return w.Decided[i] < w.Decided[j] })
	}
	return json.Marshal(w)
}

// decodeRecord reverses encodeRecord. It returns ErrCorrupt-wrapped errors
// for payloads that pass their frame checksum but do not parse: a valid
// CRC over an undecodable record means the bytes are authentic and the log
// is damaged (or written by an incompatible version), which trimming must
// not paper over.
func decodeRecord(payload []byte, specs map[histories.ObjectID]spec.SerialSpec) (Record, error) {
	var w wireRecord
	if err := json.Unmarshal(payload, &w); err != nil {
		return Record{}, fmt.Errorf("%w: undecodable record: %v", ErrCorrupt, err)
	}
	if w.Kind < RecordIntentions || w.Kind > RecordCheckpoint {
		return Record{}, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, w.Kind)
	}
	r := Record{
		Kind:         w.Kind,
		Txn:          w.Txn,
		Object:       w.Object,
		Calls:        w.Calls,
		TS:           w.TS,
		Migrate:      w.Migrate,
		RingV:        w.RingV,
		Participants: w.Participants,
		Hosted:       w.Hosted,
		ReplicaTS:    w.ReplicaTS,
	}
	if w.States != nil {
		r.States = make(map[histories.ObjectID]spec.State, len(w.States))
		for id, raw := range w.States {
			s, ok := specs[id]
			if !ok {
				return Record{}, fmt.Errorf("recovery: decode: checkpoint references object %s with no spec", id)
			}
			codec, ok := s.(spec.StateCodec)
			if !ok {
				return Record{}, fmt.Errorf("recovery: decode: spec %s for object %s has no StateCodec", s.Name(), id)
			}
			st, err := codec.DecodeState(raw)
			if err != nil {
				return Record{}, fmt.Errorf("%w: state of %s: %v", ErrCorrupt, id, err)
			}
			r.States[id] = st
		}
	}
	if w.Decided != nil {
		r.Decided = make(map[histories.ActivityID]bool, len(w.Decided))
		for _, txn := range w.Decided {
			r.Decided[txn] = true
		}
	}
	return r, nil
}
