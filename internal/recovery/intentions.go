// Package recovery provides the recovery substrate the paper's protocols
// assume: intentions lists (deferred update, after [Lampson & Sturgis],
// which §4.1 pairs with the locking protocols), undo logs (update in
// place with compensating operations), and a write-ahead log with crash and
// restart simulation.
package recovery

import (
	"fmt"

	"weihl83/internal/ccrt"
	"weihl83/internal/spec"
)

// IntentionsList is the deferred-update recovery representation: the
// sequence of calls a transaction has executed at one object, to be applied
// to the committed base state at commit and simply discarded at abort.
type IntentionsList struct {
	calls []spec.Call
}

// Add appends a call to the list.
func (l *IntentionsList) Add(c spec.Call) { l.calls = append(l.calls, c) }

// Calls returns the recorded calls. The returned slice is shared; callers
// must not modify it.
func (l *IntentionsList) Calls() []spec.Call { return l.calls }

// Len returns the number of recorded calls.
func (l *IntentionsList) Len() int { return len(l.calls) }

// Clone returns a deep copy.
func (l *IntentionsList) Clone() *IntentionsList {
	out := &IntentionsList{calls: make([]spec.Call, len(l.calls))}
	copy(out.calls, l.calls)
	return out
}

// Apply replays the intentions onto base and returns the resulting state,
// selecting the resolution of nondeterministic operations the object
// actually chose (ccrt.StepMatching). It verifies that each call's recorded
// result is achievable — a failure means the concurrency-control layer
// granted an operation whose outcome depended on the serialization order,
// and is reported as an error rather than silently installing a divergent
// state.
func (l *IntentionsList) Apply(base spec.State) (spec.State, error) {
	st := base
	for i, c := range l.calls {
		next, err := ccrt.StepMatching(st, c)
		if err != nil {
			return nil, fmt.Errorf("recovery: intention %d: %w", i, err)
		}
		st = next
	}
	return st, nil
}

// View computes the transaction-local view: base plus the intentions,
// replayed with the resolutions the object recorded.
func (l *IntentionsList) View(base spec.State) (spec.State, error) {
	return l.Apply(base)
}
