package core_test

import (
	"math/rand"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/histories"
	"weihl83/internal/paper"
	"weihl83/internal/spec"
	"weihl83/internal/value"
)

// randomExecution builds a random multi-object history that is atomic by
// construction: activities run their programs against live per-object
// states in a reference serialization order, and the resulting events are
// then interleaved randomly, preserving each activity's event order and
// placing each activity's commits after its last return. The reference
// order makes perm(h) serializable, so Atomic must accept.
func randomExecution(t *testing.T, rng *rand.Rand, commitAll bool) (histories.History, []histories.ActivityID) {
	t.Helper()
	objects := map[histories.ObjectID]spec.SerialSpec{
		"x": adts.IntSetSpec{},
		"y": adts.AccountSpec{},
	}
	states := map[histories.ObjectID]spec.State{}
	for id, s := range objects {
		states[id] = s.Init()
	}
	nAct := 2 + rng.Intn(3)
	order := make([]histories.ActivityID, nAct)
	for i := range order {
		order[i] = histories.ActivityID(rune('a' + i))
	}
	// Events per activity, in program order.
	perAct := make(map[histories.ActivityID]histories.History)
	committed := make(map[histories.ActivityID]bool)
	for _, a := range order {
		nOps := 1 + rng.Intn(3)
		var ops histories.History
		usedObjects := map[histories.ObjectID]bool{}
		for k := 0; k < nOps; k++ {
			var x histories.ObjectID
			var in spec.Invocation
			if rng.Intn(2) == 0 {
				x = "x"
				switch rng.Intn(3) {
				case 0:
					in = spec.Invocation{Op: adts.OpInsert, Arg: value.Int(int64(rng.Intn(4)))}
				case 1:
					in = spec.Invocation{Op: adts.OpDelete, Arg: value.Int(int64(rng.Intn(4)))}
				default:
					in = spec.Invocation{Op: adts.OpMember, Arg: value.Int(int64(rng.Intn(4)))}
				}
			} else {
				x = "y"
				switch rng.Intn(3) {
				case 0:
					in = spec.Invocation{Op: adts.OpDeposit, Arg: value.Int(int64(rng.Intn(10)))}
				case 1:
					in = spec.Invocation{Op: adts.OpWithdraw, Arg: value.Int(int64(rng.Intn(10)))}
				default:
					in = spec.Invocation{Op: adts.OpBalance}
				}
			}
			out, err := spec.Apply(states[x], in)
			if err != nil {
				t.Fatalf("apply %v: %v", in, err)
			}
			states[x] = out.Next
			usedObjects[x] = true
			ops = append(ops,
				histories.Invoke(x, a, in.Op, in.Arg),
				histories.Return(x, a, out.Result),
			)
		}
		if commitAll || rng.Intn(4) != 0 {
			committed[a] = true
			for x := range usedObjects {
				ops = append(ops, histories.Commit(x, a))
			}
		}
		perAct[a] = ops
	}
	// Interleave randomly preserving per-activity order and the reference
	// serialization: activity i's events may not precede activity j's
	// beginning? No — arbitrary interleavings are fine for atomicity as
	// long as results came from the reference order; equivalence only looks
	// at per-activity projections.
	idx := make(map[histories.ActivityID]int)
	var h histories.History
	remaining := len(order)
	for remaining > 0 {
		a := order[rng.Intn(len(order))]
		if idx[a] >= len(perAct[a]) {
			continue
		}
		h = append(h, perAct[a][idx[a]])
		idx[a]++
		if idx[a] == len(perAct[a]) {
			remaining--
		}
	}
	var committedOrder []histories.ActivityID
	for _, a := range order {
		if committed[a] {
			committedOrder = append(committedOrder, a)
		}
	}
	return h, committedOrder
}

// TestAtomicAcceptsConstructedExecutions: no false negatives on histories
// that are serializable by construction in the reference order.
func TestAtomicAcceptsConstructedExecutions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		h, order := randomExecution(t, rng, true)
		c := newPaperChecker()
		if err := c.SerializableInOrder(h.Perm(), order); err != nil {
			t.Fatalf("trial %d: reference order rejected: %v\n%v", trial, err, h)
		}
		if _, err := c.Atomic(h); err != nil {
			t.Fatalf("trial %d: constructed execution not atomic: %v\n%v", trial, err, h)
		}
	}
}

// TestLemma3Locality: h is serializable in order T iff every projection
// h|x is serializable in T.
func TestLemma3Locality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		h, _ := randomExecution(t, rng, true)
		c := newPaperChecker()
		// Try a few random orders of the committed activities.
		committed := h.Committed()
		for k := 0; k < 4; k++ {
			order := append([]histories.ActivityID(nil), committed...)
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			whole := c.SerializableInOrder(h.Perm(), order) == nil
			perObject := true
			for _, x := range h.Objects() {
				if c.SerializableInOrder(h.Perm().Object(x), order) != nil {
					perObject = false
					break
				}
			}
			if whole != perObject {
				t.Fatalf("Lemma 3 violated for order %v:\nwhole=%t perObject=%t\n%v", order, whole, perObject, h)
			}
		}
	}
}

// TestLocalPropertyImplications: every local atomicity property implies
// atomicity (Theorems 1, 4 and 5) — checked on random histories that carry
// the relevant timestamp events, and on all catalogued paper sequences.
func TestLocalPropertyImplications(t *testing.T) {
	c := newPaperChecker()
	for _, ps := range paper.Sequences {
		h := ps.History()
		atomicOK := func() bool { _, err := c.Atomic(h); return err == nil }
		if c.DynamicAtomic(h) == nil && !atomicOK() {
			t.Errorf("%s: dynamic atomic but not atomic", ps.Name)
		}
		if c.StaticAtomic(h) == nil && !atomicOK() {
			t.Errorf("%s: static atomic but not atomic", ps.Name)
		}
		if c.HybridAtomic(h) == nil && !atomicOK() {
			t.Errorf("%s: hybrid atomic but not atomic", ps.Name)
		}
	}
}

// TestDynamicAtomicImpliesAtomicOnRandomExecutions is Theorem 1 exercised
// through the generator: whenever the checker certifies dynamic atomicity,
// atomicity must hold too (and likewise the counterexample direction:
// failed atomicity implies failed dynamic atomicity).
func TestDynamicAtomicImpliesAtomicOnRandomExecutions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sawDynamic, sawNonDynamic := false, false
	for trial := 0; trial < 200; trial++ {
		h, _ := randomExecution(t, rng, false)
		c := newPaperChecker()
		dyn := c.DynamicAtomic(h) == nil
		_, atomicErr := c.Atomic(h)
		if dyn {
			sawDynamic = true
			if atomicErr != nil {
				t.Fatalf("trial %d: dynamic atomic but not atomic: %v\n%v", trial, atomicErr, h)
			}
		} else {
			sawNonDynamic = true
		}
	}
	if !sawDynamic || !sawNonDynamic {
		t.Logf("coverage note: sawDynamic=%t sawNonDynamic=%t", sawDynamic, sawNonDynamic)
	}
}
