package core_test

import (
	"errors"
	"strings"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/core"
	"weihl83/internal/histories"
)

func TestEmptyHistoryIsEverything(t *testing.T) {
	c := core.NewChecker()
	var h histories.History
	if err := c.SerializableInOrder(h, nil); err != nil {
		t.Errorf("empty SerializableInOrder: %v", err)
	}
	if _, err := c.Serializable(h); err != nil {
		t.Errorf("empty Serializable: %v", err)
	}
	if _, err := c.Atomic(h); err != nil {
		t.Errorf("empty Atomic: %v", err)
	}
	if err := c.DynamicAtomic(h); err != nil {
		t.Errorf("empty DynamicAtomic: %v", err)
	}
}

func TestMissingSpecError(t *testing.T) {
	c := core.NewChecker()
	h := histories.MustParse(`
<insert(3),z,a>
<ok,z,a>
<commit,z,a>
`)
	if _, err := c.Atomic(h); !errors.Is(err, core.ErrNoSpec) {
		t.Errorf("Atomic without spec = %v, want ErrNoSpec", err)
	}
	if err := c.DynamicAtomic(h); !errors.Is(err, core.ErrNoSpec) {
		t.Errorf("DynamicAtomic without spec = %v, want ErrNoSpec", err)
	}
}

func TestOrderMissingActivity(t *testing.T) {
	c := newPaperChecker()
	h := histories.MustParse(`
<insert(3),x,a>
<ok,x,a>
<commit,x,a>
`)
	err := c.SerializableInOrder(h, []histories.ActivityID{"b"})
	if !errors.Is(err, core.ErrNotSerializable) {
		t.Errorf("order missing activity: %v", err)
	}
}

func TestErrorsWrapSentinels(t *testing.T) {
	c := newPaperChecker()
	// Not atomic.
	h := findSeq(t, "S3-not-atomic").History()
	if _, err := c.Atomic(h); !errors.Is(err, core.ErrNotAtomic) {
		t.Errorf("Atomic error %v does not wrap ErrNotAtomic", err)
	}
	// Not dynamic.
	h = findSeq(t, "S4.1-atomic-not-dynamic").History()
	if err := c.DynamicAtomic(h); !errors.Is(err, core.ErrNotDynamicAtomic) {
		t.Errorf("DynamicAtomic error %v does not wrap ErrNotDynamicAtomic", err)
	}
	// Not static.
	h = findSeq(t, "S4.2-atomic-not-static").History()
	if err := c.StaticAtomic(h); !errors.Is(err, core.ErrNotStaticAtomic) {
		t.Errorf("StaticAtomic error %v does not wrap ErrNotStaticAtomic", err)
	}
	// Missing timestamps.
	h = findSeq(t, "S3-not-atomic").History()
	if err := c.StaticAtomic(h); !errors.Is(err, core.ErrNoTimestamp) {
		t.Errorf("StaticAtomic error %v does not wrap ErrNoTimestamp", err)
	}
	// Not hybrid.
	h = findSeq(t, "S4.3-atomic-not-hybrid").History()
	if err := c.HybridAtomic(h); !errors.Is(err, core.ErrNotHybridAtomic) {
		t.Errorf("HybridAtomic error %v does not wrap ErrNotHybridAtomic", err)
	}
}

func TestPendingInvocationsImposeNoConstraint(t *testing.T) {
	c := newPaperChecker()
	// b's insert never returns; a commits having observed the set empty.
	h := histories.MustParse(`
<insert(3),x,b>
<member(3),x,a>
<false,x,a>
<commit,x,a>
`)
	if _, err := c.Atomic(h); err != nil {
		t.Errorf("history with pending invocation: %v", err)
	}
}

func TestSerializationOrdersMultiObject(t *testing.T) {
	c := newPaperChecker()
	// a and b touch different objects; both orders work.
	h := histories.MustParse(`
<insert(3),x,a>
<ok,x,a>
<deposit(5),y,b>
<ok,y,b>
<commit,x,a>
<commit,y,b>
`)
	orders, err := c.SerializationOrders(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 2 {
		t.Errorf("orders = %v, want both", orders)
	}
}

func TestCheckReport(t *testing.T) {
	c := newPaperChecker()
	h := findSeq(t, "S4.2-static-atomic").History()
	r := c.Check(h)
	if r.WellFormed != nil || r.WellFormedStatic != nil {
		t.Errorf("well-formedness verdicts: %v / %v", r.WellFormed, r.WellFormedStatic)
	}
	if r.Atomic != nil || len(r.AtomicOrder) == 0 {
		t.Errorf("atomic verdict: %v, order %v", r.Atomic, r.AtomicOrder)
	}
	if r.StaticAtomic != nil {
		t.Errorf("static verdict: %v", r.StaticAtomic)
	}
	if r.DynamicAtomic == nil {
		t.Error("dynamic verdict: expected failure for this sequence")
	}
	s := r.String()
	for _, want := range []string{"well-formed", "atomic", "dynamic atomic", "static atomic", "hybrid atomic", "witness order"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "NO") || !strings.Contains(s, "yes") {
		t.Errorf("report rendering missing verdicts:\n%s", s)
	}
}

func TestRegisterReplaces(t *testing.T) {
	c := core.NewChecker()
	c.Register("x", adts.AccountSpec{})
	c.Register("x", adts.IntSetSpec{})
	h := histories.MustParse(`
<insert(3),x,a>
<ok,x,a>
<commit,x,a>
`)
	if _, err := c.Atomic(h); err != nil {
		t.Errorf("replaced spec not used: %v", err)
	}
}
