// Package core implements the paper's primary contribution: the formal
// definitions of serializability, atomicity, and the three optimal local
// atomicity properties — dynamic, static and hybrid atomicity — as exact
// decision procedures over event histories.
//
// A Checker binds each object appearing in a history to its serial
// specification (the explicit description of the object's acceptable serial
// sequences, §3). All checks then follow the paper's definitions directly:
//
//   - Serializable(h): h is equivalent to an acceptable serial sequence.
//   - SerializableInOrder(h, T): the serial arrangement of h's activities
//     in order T is acceptable. Per Lemma 3, this is checked object by
//     object.
//   - Atomic(h): perm(h) is serializable (§3).
//   - DynamicAtomic(h): perm(h) is serializable in every total order of the
//     committed activities consistent with precedes(h) (§4.1).
//   - StaticAtomic(h): perm(h) is serializable in timestamp order, with
//     timestamps chosen at initiation (§4.2.2).
//   - HybridAtomic(h): perm(h) is serializable in timestamp order, with
//     update timestamps chosen at commit and read-only timestamps at
//     initiation (§4.3.2).
//
// The procedures are exact (they explore all serialization orders /
// linear extensions, with per-object state-set pruning) and are therefore
// exponential in the number of committed activities in the worst case.
// They are intended for specifications, tests and protocol validation on
// bounded histories, which is how the paper itself uses the definitions.
package core

import (
	"errors"
	"fmt"

	"weihl83/internal/histories"
	"weihl83/internal/spec"
)

// Sentinel errors for the property checks; use errors.Is.
var (
	// ErrNotSerializable reports that no acceptable equivalent serial
	// sequence exists (for the order set being considered).
	ErrNotSerializable = errors.New("not serializable")
	// ErrNotAtomic reports that perm(h) is not serializable.
	ErrNotAtomic = errors.New("not atomic")
	// ErrNotDynamicAtomic reports that perm(h) fails to serialize in some
	// total order consistent with precedes(h).
	ErrNotDynamicAtomic = errors.New("not dynamic atomic")
	// ErrNotStaticAtomic reports that perm(h) fails to serialize in
	// initiation-timestamp order.
	ErrNotStaticAtomic = errors.New("not static atomic")
	// ErrNotHybridAtomic reports that perm(h) fails to serialize in
	// hybrid-timestamp order.
	ErrNotHybridAtomic = errors.New("not hybrid atomic")
	// ErrNoSpec reports that the history uses an object the checker has no
	// specification for.
	ErrNoSpec = errors.New("no specification registered for object")
	// ErrNoTimestamp reports that a committed activity chose no timestamp,
	// so a timestamp order does not exist.
	ErrNoTimestamp = errors.New("committed activity has no timestamp")
)

// Checker decides the paper's atomicity properties for histories over a
// fixed set of specified objects.
type Checker struct {
	specs map[histories.ObjectID]spec.SerialSpec
}

// NewChecker returns a checker with no objects registered.
func NewChecker() *Checker {
	return &Checker{specs: make(map[histories.ObjectID]spec.SerialSpec)}
}

// Register binds object x to serial specification s. Registering the same
// object twice replaces the binding.
func (c *Checker) Register(x histories.ObjectID, s spec.SerialSpec) {
	c.specs[x] = s
}

// specFor returns the spec for x or ErrNoSpec.
func (c *Checker) specFor(x histories.ObjectID) (spec.SerialSpec, error) {
	s, ok := c.specs[x]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSpec, x)
	}
	return s, nil
}

// calls extracts, for each activity and object, the activity's sequence of
// completed calls (invocation paired with its termination result) at that
// object, in invocation order. Invocations still pending at the end of the
// history have no observed result and impose no constraint; they are
// skipped.
func calls(h histories.History) map[histories.ActivityID]map[histories.ObjectID][]spec.Call {
	out := make(map[histories.ActivityID]map[histories.ObjectID][]spec.Call)
	type pendingInv struct {
		obj histories.ObjectID
		inv spec.Invocation
		set bool
	}
	pending := make(map[histories.ActivityID]pendingInv)
	for _, e := range h {
		switch e.Kind {
		case histories.KindInvoke:
			pending[e.Activity] = pendingInv{
				obj: e.Object,
				inv: spec.Invocation{Op: e.Op, Arg: e.Arg},
				set: true,
			}
		case histories.KindReturn:
			p := pending[e.Activity]
			if !p.set || p.obj != e.Object {
				continue // ill-formed return; well-formedness checks report it
			}
			m := out[e.Activity]
			if m == nil {
				m = make(map[histories.ObjectID][]spec.Call)
				out[e.Activity] = m
			}
			m[e.Object] = append(m[e.Object], spec.Call{Inv: p.inv, Result: e.Result})
			pending[e.Activity] = pendingInv{}
		}
	}
	return out
}

// objectsOf returns the objects of h in first-appearance order.
func objectsOf(h histories.History) []histories.ObjectID { return h.Objects() }
