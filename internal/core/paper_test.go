package core_test

import (
	"testing"

	"weihl83/internal/core"
	"weihl83/internal/histories"
	"weihl83/internal/paper"
)

// newPaperChecker returns a checker bound to the catalogue's objects.
func newPaperChecker() *core.Checker { return paper.NewChecker() }

// findSeq returns the catalogued sequence with the given name.
func findSeq(t *testing.T, name string) paper.Sequence {
	t.Helper()
	for _, ps := range paper.Sequences {
		if ps.Name == name {
			return ps
		}
	}
	t.Fatalf("no paper sequence named %q", name)
	return paper.Sequence{}
}

func assertVerdict(t *testing.T, section, check string, err error, want paper.Verdict) {
	t.Helper()
	switch want {
	case paper.Holds:
		if err != nil {
			t.Errorf("%s: %s = %v, want it to hold", section, check, err)
		}
	case paper.Fails:
		if err == nil {
			t.Errorf("%s: %s holds, want it to fail", section, check)
		}
	case paper.NotApplicable:
	}
}

// TestPaperSequences is experiment E1: every example sequence in the paper
// receives exactly the verdicts the paper assigns.
func TestPaperSequences(t *testing.T) {
	for _, ps := range paper.Sequences {
		ps := ps
		t.Run(ps.Name, func(t *testing.T) {
			c := newPaperChecker()
			h := ps.History()

			assertVerdict(t, ps.Section, "WellFormed", h.WellFormed(), ps.WellFormed)
			_, atomicErr := c.Atomic(h)
			assertVerdict(t, ps.Section, "Atomic", atomicErr, ps.Atomic)
			assertVerdict(t, ps.Section, "DynamicAtomic", c.DynamicAtomic(h), ps.DynamicAtomic)
			assertVerdict(t, ps.Section, "StaticAtomic", c.StaticAtomic(h), ps.StaticAtomic)
			assertVerdict(t, ps.Section, "HybridAtomic", c.HybridAtomic(h), ps.HybridAtomic)
		})
	}
}

// TestPaperSerializationOrders pins the exact order sets the paper states.
func TestPaperSerializationOrders(t *testing.T) {
	c := newPaperChecker()

	// §5.1 concurrent withdrawals: "serializable in the orders a-b-c and
	// a-c-b".
	h := findSeq(t, "S5.1-concurrent-withdrawals").History()
	orders, err := c.SerializationOrders(h.Perm())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, o := range orders {
		got[orderKey(o)] = true
	}
	if len(got) != 2 || !got["a b c"] || !got["a c b"] {
		t.Errorf("withdrawals: orders %v, want exactly {a-b-c, a-c-b}", orders)
	}

	// §5.1 queue: "both equivalent serial executions of a, b, and c (in the
	// orders a-b-c and b-a-c) are acceptable".
	h = findSeq(t, "S5.1-queue").History()
	orders, err = c.SerializationOrders(h.Perm())
	if err != nil {
		t.Fatal(err)
	}
	got = map[string]bool{}
	for _, o := range orders {
		got[orderKey(o)] = true
	}
	if !got["a b c"] || !got["b a c"] || len(got) != 2 {
		t.Errorf("queue: orders %v, want exactly {a-b-c, b-a-c}", orders)
	}

	// §4.1: the atomic-but-not-dynamic example is serializable a-b-c but
	// not b-a-c or b-c-a.
	h = findSeq(t, "S4.1-atomic-not-dynamic").History()
	if err := c.SerializableInOrder(h.Perm(), []histories.ActivityID{"a", "b", "c"}); err != nil {
		t.Errorf("a-b-c should be acceptable: %v", err)
	}
	if err := c.SerializableInOrder(h.Perm(), []histories.ActivityID{"b", "a", "c"}); err == nil {
		t.Error("b-a-c should be rejected")
	}
	if err := c.SerializableInOrder(h.Perm(), []histories.ActivityID{"b", "c", "a"}); err == nil {
		t.Error("b-c-a should be rejected")
	}
}

func orderKey(o []histories.ActivityID) string {
	s := ""
	for i, a := range o {
		if i > 0 {
			s += " "
		}
		s += string(a)
	}
	return s
}
