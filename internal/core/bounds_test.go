package core_test

import (
	"errors"
	"fmt"
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/core"
	"weihl83/internal/histories"
	"weihl83/internal/value"
)

// bigCounterHistory builds a serial counter history with n committed
// activities.
func bigCounterHistory(n int) histories.History {
	var h histories.History
	for i := 1; i <= n; i++ {
		a := histories.ActivityID(fmt.Sprintf("a%03d", i))
		h = append(h,
			histories.Invoke("c", a, "increment", value.Nil()),
			histories.Return("c", a, value.Int(int64(i))),
			histories.Commit("c", a),
		)
	}
	return h
}

func TestSearchBoundsAreEnforced(t *testing.T) {
	c := newPaperChecker()
	h := bigCounterHistory(65)
	if _, err := c.Serializable(h); !errors.Is(err, core.ErrNotSerializable) {
		t.Errorf("Serializable over 64 activities = %v, want bound error", err)
	}
	if err := c.DynamicAtomic(h); !errors.Is(err, core.ErrNotDynamicAtomic) {
		t.Errorf("DynamicAtomic over 64 activities = %v, want bound error", err)
	}
}

// TestLargeTotallyOrderedHistoryIsFast: precedes totally orders a serial
// history, so the ∀-check degenerates to a single replay even at 60
// activities — the memoized DP must handle it instantly.
func TestLargeTotallyOrderedHistoryIsFast(t *testing.T) {
	c := newPaperChecker()
	h := bigCounterHistory(60)
	if err := c.DynamicAtomic(h); err != nil {
		t.Errorf("serial counter history rejected: %v", err)
	}
	if _, err := c.Atomic(h); err != nil {
		t.Errorf("serial counter history not atomic: %v", err)
	}
}

// TestManyIndependentActivities: activities on disjoint objects serialize
// in any order; the memoized search must cope with the factorial order
// space (14 activities, 2^14 memo states at worst).
func TestManyIndependentActivities(t *testing.T) {
	c := core.NewChecker()
	var h histories.History
	for i := 0; i < 14; i++ {
		x := histories.ObjectID(fmt.Sprintf("c%02d", i))
		a := histories.ActivityID(fmt.Sprintf("a%02d", i))
		c.Register(x, adts.CounterSpec{})
		h = append(h,
			histories.Invoke(x, a, "increment", value.Nil()),
			histories.Return(x, a, value.Int(1)),
		)
	}
	// Interleave commits after all returns: precedes stays empty.
	for i := 0; i < 14; i++ {
		h = append(h, histories.Commit(histories.ObjectID(fmt.Sprintf("c%02d", i)), histories.ActivityID(fmt.Sprintf("a%02d", i))))
	}
	if err := c.DynamicAtomic(h); err != nil {
		t.Errorf("independent activities rejected: %v", err)
	}
}
