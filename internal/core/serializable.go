package core

import (
	"fmt"
	"sort"
	"strings"

	"weihl83/internal/histories"
	"weihl83/internal/spec"
)

// SerializableInOrder reports whether h is serializable in the order given
// (§3): whether the serial arrangement of h's activities in that order —
// which is equivalent to h by construction — is acceptable to every
// object's specification. Activities of h missing from order make h
// unserializable in that order (their events cannot appear in the serial
// sequence). A nil result means yes; otherwise the error explains which
// object rejects the arrangement.
func (c *Checker) SerializableInOrder(h histories.History, order []histories.ActivityID) error {
	if len(h) == 0 {
		return nil
	}
	inOrder := make(map[histories.ActivityID]bool, len(order))
	for _, a := range order {
		inOrder[a] = true
	}
	for _, a := range h.Activities() {
		if !inOrder[a] {
			return fmt.Errorf("%w: activity %s of the history is not in the order", ErrNotSerializable, a)
		}
	}
	byActivity := calls(h)
	for _, x := range objectsOf(h) {
		s, err := c.specFor(x)
		if err != nil {
			return err
		}
		var trace []spec.Call
		for _, a := range order {
			trace = append(trace, byActivity[a][x]...)
		}
		if !spec.Feasible(s, trace) {
			return fmt.Errorf("%w: object %s rejects the serial arrangement %v (trace %v)",
				ErrNotSerializable, x, order, trace)
		}
	}
	return nil
}

// perObjectStates is the search state of the incremental serializability
// DFS: for each object, the set of specification states reachable after the
// activities serialized so far.
type perObjectStates struct {
	objects []histories.ObjectID
	states  map[histories.ObjectID][]spec.State
}

func (c *Checker) initialStates(h histories.History) (*perObjectStates, error) {
	ps := &perObjectStates{
		objects: objectsOf(h),
		states:  make(map[histories.ObjectID][]spec.State),
	}
	for _, x := range ps.objects {
		s, err := c.specFor(x)
		if err != nil {
			return nil, err
		}
		ps.states[x] = []spec.State{s.Init()}
	}
	return ps, nil
}

// extend applies activity a's calls at every object; it returns nil if some
// object finds the extension infeasible.
func (ps *perObjectStates) extend(byActivity map[histories.ActivityID]map[histories.ObjectID][]spec.Call, a histories.ActivityID) *perObjectStates {
	next := &perObjectStates{
		objects: ps.objects,
		states:  make(map[histories.ObjectID][]spec.State, len(ps.states)),
	}
	for _, x := range ps.objects {
		trace := byActivity[a][x]
		if len(trace) == 0 {
			next.states[x] = ps.states[x]
			continue
		}
		sts := spec.FeasibleFrom(ps.states[x], trace)
		if sts == nil {
			return nil
		}
		next.states[x] = sts
	}
	return next
}

// key returns a canonical encoding of the per-object state sets, used to
// memoize the serialization searches.
func (ps *perObjectStates) key() string {
	var sb strings.Builder
	for _, x := range ps.objects {
		sb.WriteString(string(x))
		sb.WriteByte('=')
		keys := make([]string, 0, len(ps.states[x]))
		for _, st := range ps.states[x] {
			keys = append(keys, st.Key())
		}
		sort.Strings(keys)
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte('|')
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// Serializable reports whether h is serializable in some total order of its
// activities (§3), returning a witness order. The search is a DFS over
// activity permutations with per-object state-set pruning and memoization
// on (chosen-set, state-sets): two permutations of the same activity set
// that reach the same specification states need not both be extended.
func (c *Checker) Serializable(h histories.History) ([]histories.ActivityID, error) {
	if len(h) == 0 {
		return nil, nil
	}
	acts := h.Activities()
	if len(acts) > 64 {
		return nil, fmt.Errorf("%w: %d activities exceed the 64-activity search bound", ErrNotSerializable, len(acts))
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	byActivity := calls(h)
	init, err := c.initialStates(h)
	if err != nil {
		return nil, err
	}
	used := make(map[histories.ActivityID]bool, len(acts))
	order := make([]histories.ActivityID, 0, len(acts))
	type memoKey struct {
		mask uint64
		st   string
	}
	visited := make(map[memoKey]bool)
	var mask uint64

	var dfs func(ps *perObjectStates) bool
	dfs = func(ps *perObjectStates) bool {
		if len(order) == len(acts) {
			return true
		}
		mk := memoKey{mask, ps.key()}
		if visited[mk] {
			return false
		}
		visited[mk] = true
		for i, a := range acts {
			if used[a] {
				continue
			}
			next := ps.extend(byActivity, a)
			if next == nil {
				continue
			}
			used[a] = true
			order = append(order, a)
			mask |= 1 << i
			if dfs(next) {
				return true
			}
			mask &^= 1 << i
			order = order[:len(order)-1]
			used[a] = false
		}
		return false
	}
	if !dfs(init) {
		return nil, fmt.Errorf("%w: no acceptable serial arrangement of activities %v exists", ErrNotSerializable, acts)
	}
	return append([]histories.ActivityID(nil), order...), nil
}

// SerializationOrders returns every total order of h's activities in which
// h is serializable. It is used by the paper-example tests to assert
// exactly which serializations the examples admit (e.g. "serializable in
// the orders a-b-c and a-c-b", §5.1).
func (c *Checker) SerializationOrders(h histories.History) ([][]histories.ActivityID, error) {
	if len(h) == 0 {
		return nil, nil
	}
	acts := h.Activities()
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	byActivity := calls(h)
	init, err := c.initialStates(h)
	if err != nil {
		return nil, err
	}
	var out [][]histories.ActivityID
	used := make(map[histories.ActivityID]bool, len(acts))
	order := make([]histories.ActivityID, 0, len(acts))

	var dfs func(ps *perObjectStates)
	dfs = func(ps *perObjectStates) {
		if len(order) == len(acts) {
			out = append(out, append([]histories.ActivityID(nil), order...))
			return
		}
		for _, a := range acts {
			if used[a] {
				continue
			}
			next := ps.extend(byActivity, a)
			if next == nil {
				continue
			}
			used[a] = true
			order = append(order, a)
			dfs(next)
			order = order[:len(order)-1]
			used[a] = false
		}
	}
	dfs(init)
	return out, nil
}
