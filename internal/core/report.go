package core

import (
	"fmt"
	"strings"

	"weihl83/internal/histories"
)

// Report is the verdict of every property check on one history. It backs
// cmd/atomcheck and cmd/papertest.
type Report struct {
	WellFormed       error
	WellFormedStatic error
	WellFormedHybrid error
	Atomic           error
	AtomicOrder      []histories.ActivityID // witness order when Atomic == nil
	DynamicAtomic    error
	StaticAtomic     error
	HybridAtomic     error
}

// Check runs every property check on h and collects the verdicts. Checks
// that do not apply to the history's event vocabulary (e.g. static
// atomicity on a history without initiate events) still run; their verdict
// simply reports the missing timestamps.
func (c *Checker) Check(h histories.History) Report {
	var r Report
	r.WellFormed = h.WellFormed()
	r.WellFormedStatic = h.WellFormedStatic()
	r.WellFormedHybrid = h.WellFormedHybrid()
	r.AtomicOrder, r.Atomic = c.Atomic(h)
	r.DynamicAtomic = c.DynamicAtomic(h)
	r.StaticAtomic = c.StaticAtomic(h)
	r.HybridAtomic = c.HybridAtomic(h)
	return r
}

// verdict renders a check result as yes/no.
func verdict(err error) string {
	if err == nil {
		return "yes"
	}
	return "NO"
}

// String renders the report as an aligned table.
func (r Report) String() string {
	var sb strings.Builder
	row := func(name string, err error) {
		fmt.Fprintf(&sb, "  %-18s %s", name, verdict(err))
		if err != nil {
			fmt.Fprintf(&sb, "  (%v)", err)
		}
		sb.WriteByte('\n')
	}
	row("well-formed", r.WellFormed)
	row("wf-static", r.WellFormedStatic)
	row("wf-hybrid", r.WellFormedHybrid)
	row("atomic", r.Atomic)
	if r.Atomic == nil && len(r.AtomicOrder) > 0 {
		fmt.Fprintf(&sb, "  %-18s %v\n", "  witness order", r.AtomicOrder)
	}
	row("dynamic atomic", r.DynamicAtomic)
	row("static atomic", r.StaticAtomic)
	row("hybrid atomic", r.HybridAtomic)
	return sb.String()
}
