package core

import (
	"fmt"

	"weihl83/internal/histories"
)

// Atomic reports whether h is atomic (§3): whether perm(h) — the
// subsequence of h consisting of all events involving activities that
// commit in h — is serializable. On success it returns a witness
// serialization order of the committed activities.
func (c *Checker) Atomic(h histories.History) ([]histories.ActivityID, error) {
	order, err := c.Serializable(h.Perm())
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrNotAtomic, err)
	}
	return order, nil
}

// DynamicAtomic reports whether h is dynamic atomic (§4.1): whether perm(h)
// is serializable in every total order of the committed activities
// consistent with precedes(h). A nil result means yes; otherwise the error
// carries a counterexample order.
//
// The check is a DFS over the linear extensions of precedes(h) restricted
// to committed activities, extending per-object specification state sets
// one activity at a time. Any infeasible prefix extends to a full linear
// extension (append the remaining activities in any consistent order), so
// the first infeasible prefix found already refutes dynamic atomicity; the
// DFS therefore fails fast with a witness.
func (c *Checker) DynamicAtomic(h histories.History) error {
	perm := h.Perm()
	if len(perm) == 0 {
		return nil
	}
	committed := h.Committed()
	prec := h.Precedes()
	byActivity := calls(perm)
	init, err := c.initialStates(perm)
	if err != nil {
		return err
	}

	inSet := make(map[histories.ActivityID]bool, len(committed))
	for _, a := range committed {
		inSet[a] = true
	}
	indeg := make(map[histories.ActivityID]int, len(committed))
	succ := make(map[histories.ActivityID][]histories.ActivityID)
	for _, p := range prec.Pairs() {
		a, b := p[0], p[1]
		if !inSet[a] || !inSet[b] || a == b {
			continue
		}
		succ[a] = append(succ[a], b)
		indeg[b]++
	}

	if len(committed) > 64 {
		return fmt.Errorf("%w: %d committed activities exceed the 64-activity search bound", ErrNotDynamicAtomic, len(committed))
	}
	used := make(map[histories.ActivityID]bool, len(committed))
	order := make([]histories.ActivityID, 0, len(committed))
	type memoKey struct {
		mask uint64
		st   string
	}
	// verified memoizes (chosen-set, state-sets) nodes whose every
	// completion has already been shown feasible, so different interleaved
	// prefixes reaching the same states are not re-explored.
	verified := make(map[memoKey]bool)
	var mask uint64

	var counterexample []histories.ActivityID
	var whichErr error
	var dfs func(ps *perObjectStates) bool
	dfs = func(ps *perObjectStates) bool {
		if len(order) == len(committed) {
			return true
		}
		mk := memoKey{mask, ps.key()}
		if verified[mk] {
			return true
		}
		for i, a := range committed {
			if used[a] || indeg[a] > 0 {
				continue
			}
			next := ps.extend(byActivity, a)
			if next == nil {
				// This prefix — and hence some full linear extension — is
				// infeasible: h is not dynamic atomic.
				counterexample = append(append([]histories.ActivityID(nil), order...), a)
				whichErr = fmt.Errorf("%w: perm(h) is not serializable in an order beginning %v (consistent with precedes(h))",
					ErrNotDynamicAtomic, counterexample)
				return false
			}
			used[a] = true
			order = append(order, a)
			mask |= 1 << i
			for _, b := range succ[a] {
				indeg[b]--
			}
			ok := dfs(next)
			for _, b := range succ[a] {
				indeg[b]++
			}
			mask &^= 1 << i
			order = order[:len(order)-1]
			used[a] = false
			if !ok {
				return false
			}
		}
		verified[mk] = true
		return true
	}
	if !dfs(init) {
		return whichErr
	}
	return nil
}

// tsSource selects which events may carry an activity's timestamp.
type tsSource int

const (
	// tsInitiateOnly: static atomicity — timestamps are chosen at
	// initiation, before any operations (§4.2.1).
	tsInitiateOnly tsSource = iota + 1
	// tsInitiateOrCommit: hybrid atomicity — updates choose timestamps at
	// commit, read-only activities at initiation (§4.3.1).
	tsInitiateOrCommit
)

// timestampOf returns a's timestamp in h according to the source rule.
func timestampOf(h histories.History, a histories.ActivityID, src tsSource) (histories.Timestamp, bool) {
	for _, e := range h {
		if e.Activity != a {
			continue
		}
		switch e.Kind {
		case histories.KindInitiate:
			return e.TS, true
		case histories.KindCommit:
			if src == tsInitiateOrCommit && e.TS != histories.TSNone {
				return e.TS, true
			}
		}
	}
	return histories.TSNone, false
}

// timestampOrderOfCommitted returns the committed activities of h sorted by
// their timestamps, or an error if a committed activity chose none.
func timestampOrderOfCommitted(h histories.History, src tsSource) ([]histories.ActivityID, error) {
	committed := h.Committed()
	type at struct {
		a  histories.ActivityID
		ts histories.Timestamp
	}
	pairs := make([]at, 0, len(committed))
	for _, a := range committed {
		ts, ok := timestampOf(h, a, src)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoTimestamp, a)
		}
		pairs = append(pairs, at{a, ts})
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j-1].ts > pairs[j].ts; j-- {
			pairs[j-1], pairs[j] = pairs[j], pairs[j-1]
		}
	}
	out := make([]histories.ActivityID, len(pairs))
	for i, p := range pairs {
		out[i] = p.a
	}
	return out, nil
}

// StaticAtomic reports whether h is static atomic (§4.2.2): whether perm(h)
// is serializable in timestamp order, where every activity chose its
// timestamp at initiation. The caller is expected to have validated h with
// histories.WellFormedStatic.
func (c *Checker) StaticAtomic(h histories.History) error {
	perm := h.Perm()
	order, err := timestampOrderOfCommitted(h, tsInitiateOnly)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrNotStaticAtomic, err)
	}
	if err := c.SerializableInOrder(perm, order); err != nil {
		return fmt.Errorf("%w: timestamp order %v: %w", ErrNotStaticAtomic, order, err)
	}
	return nil
}

// HybridAtomic reports whether h is hybrid atomic (§4.3.2): whether perm(h)
// is serializable in timestamp order, where update activities chose
// timestamps at commit and read-only activities at initiation. The caller
// is expected to have validated h with histories.WellFormedHybrid.
func (c *Checker) HybridAtomic(h histories.History) error {
	perm := h.Perm()
	// Committed activities are updates (timestamped commits) plus read-only
	// activities that committed; read-only activities carry their timestamp
	// on their initiate events, which TimestampOf already consults.
	order, err := timestampOrderOfCommitted(h, tsInitiateOrCommit)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrNotHybridAtomic, err)
	}
	if err := c.SerializableInOrder(perm, order); err != nil {
		return fmt.Errorf("%w: timestamp order %v: %w", ErrNotHybridAtomic, order, err)
	}
	return nil
}
