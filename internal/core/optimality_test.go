package core_test

import (
	"testing"

	"weihl83/internal/adts"
	"weihl83/internal/histories"
)

// TestOptimalityConstruction reproduces the §4.1 optimality proof's
// counterexample construction concretely (experiment E3).
//
// Suppose some "local atomicity property" P admitted strictly more
// histories than dynamic atomicity. Then P admits a history h_x that is
// atomic but not dynamic atomic — we use the paper's own §4.1 example,
// which is serializable only in the order a-b-c while precedes(h_x) also
// allows b-a-c and b-c-a.
//
// The proof builds the counter object y whose serial sequences reveal the
// complete serialization order, and a history h_y over y that is dynamic
// atomic but serializable ONLY in the order T = b-a-c. Composing the two
// yields a computation h with h|x = h_x and h|y = h_y that is NOT atomic:
// no single serialization order satisfies both objects. Hence P is not a
// local atomicity property, and nothing strictly weaker than dynamic
// atomicity is local.
func TestOptimalityConstruction(t *testing.T) {
	c := newPaperChecker()

	// h_x: the paper's atomic-but-not-dynamic-atomic integer-set history.
	hx := findSeq(t, "S4.1-atomic-not-dynamic").History()
	if _, err := c.Atomic(hx); err != nil {
		t.Fatalf("h_x must be atomic: %v", err)
	}
	if err := c.DynamicAtomic(hx); err == nil {
		t.Fatal("h_x must not be dynamic atomic")
	}

	// h_y: the counter history with the committed activities performing one
	// increment each, in the order T = b-a-c in which h_x does NOT
	// serialize.
	hy := histories.MustParse(`
<increment,c,b>
<1,c,b>
<commit,c,b>
<increment,c,a>
<2,c,a>
<commit,c,a>
<increment,c,c1>
<3,c,c1>
<commit,c,c1>
`)
	// (The counter object is named "c" in the checker registry; the third
	// activity is named c1 to avoid clashing with the activity c of h_x —
	// we rename h_x's activity below instead, keeping the paper's letters
	// in the catalogue.)
	if err := c.DynamicAtomic(hy); err != nil {
		t.Fatalf("h_y must be dynamic atomic: %v", err)
	}
	orders, err := c.SerializationOrders(hy)
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 1 || orderKey(orders[0]) != "b a c1" {
		t.Fatalf("h_y must be serializable only in b-a-c1, got %v", orders)
	}

	// Compose: rename h_x's activity c to c1, then interleave so that
	// h|x = h_x and h|y = h_y with every activity sequential. Activities'
	// per-object programs are already non-overlapping, so appending each
	// activity's y-events after its x-return and before its x-commit is a
	// valid single-threaded interleaving; here we simply alternate blocks
	// in an order compatible with both projections.
	hxRenamed := make(histories.History, len(hx))
	for i, e := range hx {
		if e.Activity == "c" {
			e.Activity = "c1"
		}
		hxRenamed[i] = e
	}
	h := compose(t, hxRenamed, hy)
	if err := h.WellFormed(); err != nil {
		t.Fatalf("composed history ill-formed: %v", err)
	}
	if got := h.Object("x"); !got.Equivalent(hxRenamed) {
		t.Fatalf("h|x != h_x:\n%v\nvs\n%v", got, hxRenamed)
	}
	if got := h.Object("c"); !got.Equivalent(hy) {
		t.Fatalf("h|c != h_y:\n%v\nvs\n%v", got, hy)
	}

	// The punchline: the composition is not atomic.
	if _, err := c.Atomic(h); err == nil {
		t.Fatal("composed history is atomic; the optimality construction failed")
	}
}

// compose interleaves two single-object histories into one history whose
// per-object projections are exactly the inputs, scheduling greedily: at
// each step emit the next event of either input whose activity has no
// pending invocation elsewhere and respecting both input orders.
func compose(t *testing.T, h1, h2 histories.History) histories.History {
	t.Helper()
	var out histories.History
	i, j := 0, 0
	pendingAt := make(map[histories.ActivityID]histories.ObjectID)
	committed := make(map[histories.ActivityID]bool)
	canEmit := func(e histories.Event) bool {
		switch e.Kind {
		case histories.KindInvoke:
			_, busy := pendingAt[e.Activity]
			return !busy && !committed[e.Activity]
		case histories.KindReturn:
			return pendingAt[e.Activity] == e.Object
		case histories.KindCommit:
			_, busy := pendingAt[e.Activity]
			return !busy
		default:
			return true
		}
	}
	emit := func(e histories.Event) {
		switch e.Kind {
		case histories.KindInvoke:
			pendingAt[e.Activity] = e.Object
		case histories.KindReturn:
			delete(pendingAt, e.Activity)
		case histories.KindCommit:
			// Commits at individual objects; the activity is done only for
			// composition purposes once both inputs have emitted theirs.
		}
		out = append(out, e)
	}
	for i < len(h1) || j < len(h2) {
		progressed := false
		if i < len(h1) && canEmit(h1[i]) {
			emit(h1[i])
			i++
			progressed = true
		}
		if j < len(h2) && canEmit(h2[j]) {
			emit(h2[j])
			j++
			progressed = true
		}
		if !progressed {
			t.Fatalf("composition deadlocked at h1[%d], h2[%d]", i, j)
		}
	}
	return out
}

// TestAtomicityIsNotLocal distills the same point as a two-line corollary:
// per-object atomicity (each projection atomic) does not imply atomicity of
// the whole computation, so "atomic" itself is not a local atomicity
// property — which is why the paper needs dynamic/static/hybrid atomicity.
func TestAtomicityIsNotLocal(t *testing.T) {
	c := newPaperChecker()
	// a and b access two counters in opposite serialization orders.
	h := histories.MustParse(`
<increment,c,a>
<1,c,a>
<increment,c2,b>
<1,c2,b>
<increment,c,b>
<2,c,b>
<increment,c2,a>
<2,c2,a>
<commit,c,a>
<commit,c2,a>
<commit,c,b>
<commit,c2,b>
`)
	c.Register("c2", adts.CounterSpec{})
	for _, x := range h.Objects() {
		if _, err := c.Atomic(h.Object(x)); err != nil {
			t.Fatalf("projection h|%s must be atomic: %v", x, err)
		}
	}
	if _, err := c.Atomic(h); err == nil {
		t.Fatal("whole computation must not be atomic")
	}
}
